//! Native (real-thread) serving.
//!
//! [`serve_native`] is the wall-clock counterpart of
//! [`serve_sim`](crate::serve_sim): a fixed worker fleet drains a bounded
//! admission queue, each worker owning its own [`LevelPool`] so jobs run
//! side by side on real threads. There is no GPU here — cost-model
//! admission still orders the queue (a host-only plan priced for one
//! worker's thread count), and the same [`Policy`] and backpressure
//! semantics apply, but time is measured in microseconds of wall clock.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hpu_core::LevelPool;
use hpu_model::{plan_cost, LevelProfile, MachineParams, Plan, ScheduleSpec};
use hpu_obs::{JobOutcome, JobRecord, ServeReport};

use crate::error::ServeError;
use crate::job::Workload;
use crate::queue::{dispatch_order, Rank};
use crate::sched::ServeConfig;

/// One job submission for native serving. Times are microseconds from
/// the start of the serving run.
pub struct NativeJobRequest {
    /// Human-readable label, carried into the records.
    pub name: String,
    /// Submission time, microseconds after serving starts.
    pub arrival_us: u64,
    /// Latest acceptable start time, if any (microseconds).
    pub deadline_us: Option<u64>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

impl NativeJobRequest {
    /// A deadline-free native job submission.
    pub fn new(name: impl Into<String>, arrival_us: u64, workload: Box<dyn Workload>) -> Self {
        NativeJobRequest {
            name: name.into(),
            arrival_us,
            deadline_us: None,
            workload,
        }
    }
}

/// What a native serving run produces. All times in the report are
/// microseconds of wall clock.
pub struct NativeServeOutput {
    /// Fleet-level metrics over every submitted job.
    pub report: ServeReport,
    /// Typed rejection/cancellation/failure errors.
    pub errors: Vec<ServeError>,
}

struct Queued {
    id: u64,
    name: String,
    arrival: f64,
    deadline_us: Option<u64>,
    cost: f64,
    skips: usize,
    workload: Box<dyn Workload>,
}

#[derive(Default)]
struct State {
    queue: Vec<Queued>,
    done: bool,
    records: Vec<JobRecord>,
    errors: Vec<ServeError>,
    busy: Vec<(f64, f64)>,
}

/// Predicted service cost of a job on one worker: its host-only plan
/// priced for the worker's thread count. Only the *relative* order
/// matters (shortest-cost-first); records report zero prediction because
/// model units and wall microseconds are not comparable.
fn admission_cost(workload: &dyn Workload, threads: usize) -> Option<f64> {
    let params = MachineParams::new(threads.max(1), 1, 1.0).ok()?;
    let rec = workload.recurrence();
    let n = workload.input_len() as u64;
    let levels = workload.exec_levels().ok()?;
    let plan = Plan::host_only(n, levels, threads.max(1), ScheduleSpec::CpuParallel);
    let profile = LevelProfile::new(&params, &rec, n);
    Some(plan_cost(&profile, &plan).total)
}

/// Serves `jobs` on `workers` real worker threads, each running jobs on
/// its own `threads_per_worker`-wide [`LevelPool`]. Jobs are submitted by
/// a paced feeder thread at their `arrival_us` offsets, so throughput and
/// latency reflect genuine open-loop arrival.
pub fn serve_native(
    serve: &ServeConfig,
    workers: usize,
    threads_per_worker: usize,
    mut jobs: Vec<NativeJobRequest>,
) -> NativeServeOutput {
    jobs.sort_by_key(|j| j.arrival_us);
    let epoch = Instant::now();
    let state = Mutex::new(State::default());
    let cvar = Condvar::new();
    let workers = workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let pool = LevelPool::new(threads_per_worker);
                loop {
                    let mut job = {
                        let mut st = state.lock().expect("serve state lock");
                        loop {
                            if !st.queue.is_empty() {
                                let ranks: Vec<Rank> = st
                                    .queue
                                    .iter()
                                    .map(|q| Rank {
                                        seq: q.id,
                                        cost: q.cost,
                                        skips: q.skips,
                                    })
                                    .collect();
                                let (order, _) = dispatch_order(&serve.policy, &ranks);
                                let qi = order[0];
                                let job = st.queue.remove(qi);
                                for other in st.queue.iter_mut() {
                                    if other.id < job.id {
                                        other.skips += 1;
                                    }
                                }
                                break job;
                            }
                            if st.done {
                                return;
                            }
                            st = cvar.wait(st).expect("serve state lock");
                        }
                    };
                    let start = epoch.elapsed().as_secs_f64() * 1e6;
                    if let Some(dl) = job.deadline_us {
                        if start > dl as f64 {
                            let mut st = state.lock().expect("serve state lock");
                            st.errors.push(ServeError::Cancelled {
                                job: job.id,
                                deadline: dl as f64,
                            });
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Cancelled,
                                arrival: job.arrival,
                                start,
                                end: start,
                                predicted: 0.0,
                                service: 0.0,
                                fallback: false,
                            });
                            continue;
                        }
                    }
                    let outcome = job.workload.run_native(&pool);
                    let end = epoch.elapsed().as_secs_f64() * 1e6;
                    let mut st = state.lock().expect("serve state lock");
                    st.busy.push((start, end));
                    match outcome {
                        Ok(_) => st.records.push(JobRecord {
                            id: job.id,
                            name: job.name,
                            outcome: JobOutcome::Completed,
                            arrival: job.arrival,
                            start,
                            end,
                            predicted: 0.0,
                            service: end - start,
                            fallback: false,
                        }),
                        Err(e) => {
                            st.errors.push(ServeError::Run {
                                job: job.id,
                                source: e,
                            });
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Failed,
                                arrival: job.arrival,
                                start,
                                end,
                                predicted: 0.0,
                                service: 0.0,
                                fallback: false,
                            });
                        }
                    }
                }
            });
        }

        // Paced open-loop feeder: this thread releases each job at its
        // arrival offset.
        for (id, job) in jobs.into_iter().enumerate() {
            let target = Duration::from_micros(job.arrival_us);
            let elapsed = epoch.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
            let arrival = epoch.elapsed().as_secs_f64() * 1e6;
            let cost = admission_cost(job.workload.as_ref(), threads_per_worker);
            let mut st = state.lock().expect("serve state lock");
            if st.queue.len() >= serve.queue_capacity {
                st.errors.push(ServeError::QueueFull {
                    job: id as u64,
                    capacity: serve.queue_capacity,
                });
                st.records.push(JobRecord {
                    id: id as u64,
                    name: job.name,
                    outcome: JobOutcome::QueueFull,
                    arrival,
                    start: arrival,
                    end: arrival,
                    predicted: 0.0,
                    service: 0.0,
                    fallback: false,
                });
                continue;
            }
            st.queue.push(Queued {
                id: id as u64,
                name: job.name,
                arrival,
                deadline_us: job.deadline_us,
                cost: cost.unwrap_or(f64::MAX),
                skips: 0,
                workload: job.workload,
            });
            drop(st);
            cvar.notify_one();
        }
        let mut st = state.lock().expect("serve state lock");
        st.done = true;
        drop(st);
        cvar.notify_all();
    });

    let st = state.into_inner().expect("serve state lock");
    let makespan = st.records.iter().map(|r| r.end).fold(0.0, f64::max);
    let cpu_busy = hpu_obs::merge_intervals(&st.busy);
    let report = ServeReport::new(st.records, makespan, cpu_busy, 0.0);
    NativeServeOutput {
        report,
        errors: st.errors,
    }
}
