//! Native (real-thread) serving.
//!
//! [`serve_native`] is the wall-clock counterpart of
//! [`serve_sim`](crate::serve_sim): a fixed worker fleet drains a bounded
//! admission queue, each worker owning its own [`LevelPool`] so jobs run
//! side by side on real threads. There is no GPU here — cost-model
//! admission still orders the queue (a host-only plan priced for one
//! worker's thread count), and the same [`Policy`] and backpressure
//! semantics apply, but time is measured in microseconds of wall clock.
//!
//! With [`ServeConfig::calibration`] set, the fleet learns an EWMA
//! wall-microseconds-per-model-op scale from completed jobs, so records
//! carry a meaningful `predicted` (and hence drift) instead of zero: the
//! first completion seeds the scale, later ones smooth it, and each
//! record's `calibration_generation` counts the scale updates that had
//! landed when the job was priced.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use hpu_core::exec::RecoveryPolicy;
use hpu_core::{CoreError, LevelPool};
use hpu_model::{plan_cost, LevelProfile, MachineParams, Plan, ScheduleSpec};
use hpu_obs::{FaultTag, JobOutcome, JobRecord, ServeReport};

use crate::error::ServeError;
use crate::job::Workload;
use crate::queue::{dispatch_order, Rank};
use crate::sched::ServeConfig;

/// One job submission for native serving. Times are microseconds from
/// the start of the serving run.
pub struct NativeJobRequest {
    /// Human-readable label, carried into the records.
    pub name: String,
    /// Submission time, microseconds after serving starts.
    pub arrival_us: u64,
    /// Latest acceptable start time, if any (microseconds).
    pub deadline_us: Option<u64>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

impl NativeJobRequest {
    /// A deadline-free native job submission.
    pub fn new(name: impl Into<String>, arrival_us: u64, workload: Box<dyn Workload>) -> Self {
        NativeJobRequest {
            name: name.into(),
            arrival_us,
            deadline_us: None,
            workload,
        }
    }
}

/// What a native serving run produces. All times in the report are
/// microseconds of wall clock.
pub struct NativeServeOutput {
    /// Fleet-level metrics over every submitted job.
    pub report: ServeReport,
    /// Typed rejection/cancellation/failure errors.
    pub errors: Vec<ServeError>,
    /// Completed-job updates folded into the µs-per-op prediction scale
    /// (0 without calibration).
    pub calibration_updates: u64,
}

struct Queued {
    id: u64,
    name: String,
    arrival: f64,
    deadline_us: Option<u64>,
    cost: f64,
    predicted: f64,
    generation: u64,
    skips: usize,
    workload: Box<dyn Workload>,
}

#[derive(Default)]
struct State {
    queue: Vec<Queued>,
    done: bool,
    records: Vec<JobRecord>,
    errors: Vec<ServeError>,
    busy: Vec<(f64, f64)>,
    /// EWMA wall-µs per model op, seeded by the first completion.
    scale: Option<f64>,
    /// Completed-job updates folded into `scale` so far.
    scale_updates: u64,
}

/// Locks the shared serving state, recovering from poison: a worker that
/// panicked outside the catch boundary must not wedge the whole fleet.
/// Returns whether the lock was found poisoned so the caller can record
/// the incident.
fn lock_recover<'a>(m: &'a Mutex<State>) -> (MutexGuard<'a, State>, bool) {
    match m.lock() {
        Ok(g) => (g, false),
        Err(p) => (p.into_inner(), true),
    }
}

/// Renders a caught panic payload for the typed error record.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one attempt at running a job natively produced.
enum Attempt {
    Ok,
    Err(CoreError),
    Panic(String),
}

/// Predicted service cost of a job on one worker: its host-only plan
/// priced for the worker's thread count, in model ops. The *relative*
/// order is what dispatch needs (shortest-cost-first); the calibration
/// loop additionally learns a µs-per-op scale so records can carry a
/// wall-clock prediction.
fn admission_cost(workload: &dyn Workload, threads: usize) -> Option<f64> {
    let params = MachineParams::new(threads.max(1), 1, 1.0).ok()?;
    let rec = workload.recurrence();
    let n = workload.input_len() as u64;
    let levels = workload.exec_levels().ok()?;
    let plan = Plan::host_only(n, levels, threads.max(1), ScheduleSpec::CpuParallel);
    let profile = LevelProfile::new(&params, &rec, n);
    plan_cost(&profile, &plan).ok().map(|c| c.total)
}

/// Serves `jobs` on `workers` real worker threads, each running jobs on
/// its own `threads_per_worker`-wide [`LevelPool`]. Jobs are submitted by
/// a paced feeder thread at their `arrival_us` offsets, so throughput and
/// latency reflect genuine open-loop arrival.
pub fn serve_native(
    serve: &ServeConfig,
    workers: usize,
    threads_per_worker: usize,
    mut jobs: Vec<NativeJobRequest>,
) -> NativeServeOutput {
    jobs.sort_by_key(|j| j.arrival_us);
    let smoothing = serve
        .calibration
        .as_ref()
        .map(|c| c.smoothing.clamp(0.0, 1.0));
    let epoch = Instant::now();
    let state = Mutex::new(State::default());
    let cvar = Condvar::new();
    let workers = workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut pool = LevelPool::new(threads_per_worker);
                // Without a fault configuration a panic is still caught
                // and typed, just never retried.
                let recovery =
                    serve
                        .faults
                        .as_ref()
                        .map(|f| f.recovery)
                        .unwrap_or(RecoveryPolicy {
                            max_retries: 0,
                            backoff_base: 0.0,
                            backoff_factor: 1.0,
                            max_backoff: 0.0,
                        });
                loop {
                    let mut job = {
                        let (mut st, poisoned) = lock_recover(&state);
                        if poisoned {
                            st.errors.push(ServeError::Poisoned {
                                context: "native serve state",
                            });
                        }
                        loop {
                            if !st.queue.is_empty() {
                                let ranks: Vec<Rank> = st
                                    .queue
                                    .iter()
                                    .map(|q| Rank {
                                        seq: q.id,
                                        cost: q.cost,
                                        skips: q.skips,
                                    })
                                    .collect();
                                let (order, _) = dispatch_order(&serve.policy, &ranks);
                                let qi = order[0];
                                let job = st.queue.remove(qi);
                                for other in st.queue.iter_mut() {
                                    if other.id < job.id {
                                        other.skips += 1;
                                    }
                                }
                                break job;
                            }
                            if st.done {
                                return;
                            }
                            st = cvar.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    let start = epoch.elapsed().as_secs_f64() * 1e6;
                    if let Some(m) = &serve.metrics {
                        m.observe("native.wait", start - job.arrival);
                    }
                    if let Some(dl) = job.deadline_us {
                        if start > dl as f64 {
                            if let Some(m) = &serve.metrics {
                                m.inc("native.cancelled", 1);
                            }
                            let (mut st, _) = lock_recover(&state);
                            st.errors.push(ServeError::Cancelled {
                                job: job.id,
                                deadline: dl as f64,
                            });
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Cancelled,
                                arrival: job.arrival,
                                start,
                                end: start,
                                predicted: job.predicted,
                                service: 0.0,
                                fallback: false,
                                retries: 0,
                                degraded: false,
                                calibration_generation: job.generation,
                            });
                            continue;
                        }
                    }
                    // Panic-safe run: a panicking workload is caught at the
                    // job boundary, the possibly-poisoned pool rebuilt, and
                    // the job retried under the backoff policy before it
                    // surfaces as a typed failure. The worker survives.
                    let mut retries: u32 = 0;
                    let attempt = loop {
                        match catch_unwind(AssertUnwindSafe(|| job.workload.run_native(&pool))) {
                            Ok(Ok(_)) => break Attempt::Ok,
                            Ok(Err(e)) => break Attempt::Err(e),
                            Err(payload) => {
                                pool = LevelPool::new(threads_per_worker);
                                if retries < recovery.max_retries {
                                    // Clamped: unclamped `base * factor^k`
                                    // overflows `as u64` past 2^64 µs and in
                                    // any case sleeps a worker for hours once
                                    // k grows; `backoff_at` caps the delay at
                                    // `recovery.max_backoff`.
                                    let backoff = recovery.backoff_at(retries);
                                    if backoff > 0.0 {
                                        std::thread::sleep(Duration::from_micros(backoff as u64));
                                    }
                                    retries += 1;
                                    continue;
                                }
                                break Attempt::Panic(panic_message(payload.as_ref()));
                            }
                        }
                    };
                    let end = epoch.elapsed().as_secs_f64() * 1e6;
                    if let Some(m) = &serve.metrics {
                        match &attempt {
                            Attempt::Ok => {
                                m.inc("native.completed", 1);
                                m.observe("native.service", end - start);
                            }
                            Attempt::Err(_) => m.inc("native.failed", 1),
                            Attempt::Panic(_) => m.inc("native.panics", 1),
                        }
                        if retries > 0 {
                            m.inc("native.retries", u64::from(retries));
                        }
                    }
                    let (mut st, poisoned) = lock_recover(&state);
                    if poisoned {
                        st.errors.push(ServeError::Poisoned {
                            context: "native serve state",
                        });
                    }
                    st.busy.push((start, end));
                    match attempt {
                        Attempt::Ok => {
                            if let Some(sm) = smoothing {
                                let service = end - start;
                                if job.cost > 0.0 && job.cost.is_finite() && service > 0.0 {
                                    let r = service / job.cost;
                                    st.scale = Some(match st.scale {
                                        None => r,
                                        Some(old) => (1.0 - sm) * old + sm * r,
                                    });
                                    st.scale_updates += 1;
                                }
                            }
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Completed,
                                arrival: job.arrival,
                                start,
                                end,
                                predicted: job.predicted,
                                service: end - start,
                                fallback: false,
                                retries,
                                degraded: false,
                                calibration_generation: job.generation,
                            });
                        }
                        Attempt::Err(e) => {
                            st.errors.push(ServeError::Run {
                                job: job.id,
                                source: e,
                            });
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Failed {
                                    fault: FaultTag::Error,
                                    retries,
                                },
                                arrival: job.arrival,
                                start,
                                end,
                                predicted: job.predicted,
                                service: 0.0,
                                fallback: false,
                                retries,
                                degraded: false,
                                calibration_generation: job.generation,
                            });
                        }
                        Attempt::Panic(message) => {
                            st.errors.push(ServeError::WorkerPanic {
                                job: job.id,
                                message,
                            });
                            st.records.push(JobRecord {
                                id: job.id,
                                name: job.name,
                                outcome: JobOutcome::Failed {
                                    fault: FaultTag::Panic,
                                    retries,
                                },
                                arrival: job.arrival,
                                start,
                                end,
                                predicted: job.predicted,
                                service: 0.0,
                                fallback: false,
                                retries,
                                degraded: false,
                                calibration_generation: job.generation,
                            });
                        }
                    }
                }
            });
        }

        // Paced open-loop feeder: this thread releases each job at its
        // arrival offset.
        for (id, job) in jobs.into_iter().enumerate() {
            let target = Duration::from_micros(job.arrival_us);
            let elapsed = epoch.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
            let arrival = epoch.elapsed().as_secs_f64() * 1e6;
            if let Some(m) = &serve.metrics {
                m.inc("native.submitted", 1);
            }
            let cost = admission_cost(job.workload.as_ref(), threads_per_worker);
            let (mut st, poisoned) = lock_recover(&state);
            if poisoned {
                st.errors.push(ServeError::Poisoned {
                    context: "native serve state",
                });
            }
            if st.queue.len() >= serve.queue_capacity {
                if let Some(m) = &serve.metrics {
                    m.inc("native.rejected", 1);
                }
                st.errors.push(ServeError::QueueFull {
                    job: id as u64,
                    capacity: serve.queue_capacity,
                });
                let generation = st.scale_updates;
                st.records.push(JobRecord {
                    id: id as u64,
                    name: job.name,
                    outcome: JobOutcome::QueueFull,
                    arrival,
                    start: arrival,
                    end: arrival,
                    predicted: 0.0,
                    service: 0.0,
                    fallback: false,
                    retries: 0,
                    degraded: false,
                    calibration_generation: generation,
                });
                continue;
            }
            // Price in wall µs with the learned scale; before the first
            // completion (or without calibration) there is no prediction.
            let predicted = match (smoothing, st.scale, cost) {
                (Some(_), Some(scale), Some(c)) => c * scale,
                _ => 0.0,
            };
            let generation = st.scale_updates;
            st.queue.push(Queued {
                id: id as u64,
                name: job.name,
                arrival,
                deadline_us: job.deadline_us,
                cost: cost.unwrap_or(f64::MAX),
                predicted,
                generation,
                skips: 0,
                workload: job.workload,
            });
            drop(st);
            cvar.notify_one();
        }
        let (mut st, _) = lock_recover(&state);
        st.done = true;
        drop(st);
        cvar.notify_all();
    });

    let st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    let cpu_busy = hpu_obs::merge_intervals(&st.busy);
    let report = ServeReport::new(st.records, cpu_busy, 0.0);
    NativeServeOutput {
        report,
        errors: st.errors,
        calibration_updates: st.scale_updates,
    }
}
