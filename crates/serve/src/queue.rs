//! Dispatch policies over the admission queue.

/// Order in which queued jobs are offered resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Strict arrival order: the head of the queue dispatches first, and
    /// nothing may overtake it — trivially starvation-free, but a blocked
    /// head idles resources.
    Fifo,
    /// Shortest-predicted-cost-first with backfilling: the cheapest
    /// predicted job dispatches first, and a job that cannot start yet may
    /// be overtaken — at most `starvation_bound` times, after which it
    /// becomes rigid and nothing may overtake it again.
    ShortestCost {
        /// Maximum number of times an older job may be overtaken.
        starvation_bound: usize,
    },
}

impl Default for Policy {
    fn default() -> Self {
        Policy::ShortestCost {
            starvation_bound: 4,
        }
    }
}

/// Scheduling facts about one queued job.
///
/// Public so that policy invariants (e.g. `ShortestCost` with a zero
/// starvation bound degrading to exact FIFO) can be property-tested
/// against [`dispatch_order`] from outside the crate.
#[derive(Debug, Clone)]
pub struct Rank {
    /// Admission order (also arrival order for equal arrival times).
    pub seq: u64,
    /// Predicted service cost.
    pub cost: f64,
    /// Times this job has been overtaken by a newer one.
    pub skips: usize,
}

/// Returns indices of `ranks` in dispatch-priority order, plus the length
/// of the *rigid prefix*: entries before that bound may not be backfilled
/// past — if one of them cannot start, the dispatch scan stops.
pub fn dispatch_order(policy: &Policy, ranks: &[Rank]) -> (Vec<usize>, usize) {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    match policy {
        Policy::Fifo => {
            idx.sort_by_key(|&i| ranks[i].seq);
            let rigid = idx.len();
            (idx, rigid)
        }
        Policy::ShortestCost { starvation_bound } => {
            let overdue = |i: usize| ranks[i].skips >= *starvation_bound;
            idx.sort_by(|&a, &b| {
                overdue(b).cmp(&overdue(a)).then_with(|| {
                    if overdue(a) && overdue(b) {
                        ranks[a].seq.cmp(&ranks[b].seq)
                    } else {
                        ranks[a]
                            .cost
                            .total_cmp(&ranks[b].cost)
                            .then(ranks[a].seq.cmp(&ranks[b].seq))
                    }
                })
            });
            let rigid = idx.iter().take_while(|&&i| overdue(i)).count();
            (idx, rigid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(seq: u64, cost: f64, skips: usize) -> Rank {
        Rank { seq, cost, skips }
    }

    #[test]
    fn fifo_is_arrival_order_and_fully_rigid() {
        let ranks = vec![rank(2, 1.0, 0), rank(0, 9.0, 0), rank(1, 5.0, 0)];
        let (order, rigid) = dispatch_order(&Policy::Fifo, &ranks);
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(rigid, 3);
    }

    #[test]
    fn shortest_cost_orders_by_prediction() {
        let ranks = vec![rank(0, 9.0, 0), rank(1, 1.0, 0), rank(2, 5.0, 0)];
        let (order, rigid) = dispatch_order(
            &Policy::ShortestCost {
                starvation_bound: 4,
            },
            &ranks,
        );
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(rigid, 0);
    }

    #[test]
    fn overtaken_jobs_become_rigid_at_the_bound() {
        let ranks = vec![rank(0, 9.0, 2), rank(1, 1.0, 0), rank(2, 5.0, 2)];
        let (order, rigid) = dispatch_order(
            &Policy::ShortestCost {
                starvation_bound: 2,
            },
            &ranks,
        );
        // Both overdue jobs lead, oldest first; the cheap job waits.
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(rigid, 2);
    }

    #[test]
    fn cost_ties_break_by_age() {
        let ranks = vec![rank(1, 5.0, 0), rank(0, 5.0, 0)];
        let (order, _) = dispatch_order(&Policy::default(), &ranks);
        assert_eq!(order, vec![1, 0]);
    }
}
