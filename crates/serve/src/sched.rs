//! The simulated-time multi-job scheduler.
//!
//! [`serve_sim`] runs a fleet of D&C jobs over **one** shared simulated
//! machine. Each job is compiled to a [`Plan`] at admission, priced with
//! [`plan_cost`], and solo-executed on a private virtual clock to measure
//! its exact per-segment device demands; dispatch then replays those
//! demands through the [`DeviceArbiter`]'s reservation calendars in fleet
//! virtual time. The GPU is an exclusive lease, so GPU segments of
//! different jobs serialize while their CPU segments overlap; the CPU pool
//! partitions by core count (see [`ServeConfig::cores_per_job`]).
//!
//! Scheduling is event-driven and fully deterministic: events are job
//! arrivals and reservation releases, and at each event the dispatcher
//! offers resources to queued jobs in [`Policy`] order. Backpressure is a
//! bounded queue ([`ServeError::QueueFull`]); deadlines cancel jobs whose
//! projected completion falls past them ([`ServeError::Cancelled`] — the
//! projection only ever tightens as reservations accumulate, so an early
//! cancel is never wrong). When the GPU lease is contended, a job with a
//! compiled CPU-only fallback takes it instead of waiting, if that
//! finishes sooner.
//!
//! # Closed-loop calibration
//!
//! With [`ServeConfig::calibration`] set, the scheduler closes the loop
//! between prediction and observation: each completed job's measured
//! CPU/GPU/bus times are folded into a [`Calibrator`] **at the job's
//! completion time** (evidence never arrives early), and when a completed
//! job's relative drift exceeds the configured threshold, every
//! still-queued job is re-priced and re-compiled under the corrected
//! parameters — admission cost, `ShortestCost` ordering, and the plan's
//! crossover levels all improve as evidence accumulates. Pricing can start
//! from deliberately wrong numbers via [`ServeConfig::assumed`].
//! Everything stays deterministic: observations drain in completion order
//! at event boundaries.
//!
//! # Driving a node one event at a time
//!
//! [`serve_sim`] is a thin wrapper over [`NodeSim`], the resumable form
//! of the same scheduler: construct one, [`NodeSim::submit`] jobs (before
//! or between events), [`NodeSim::step`] single events, and
//! [`NodeSim::finish`] for the [`ServeOutput`]. A fleet layer
//! (`hpu-fleet`) interleaves many nodes in one global virtual time by
//! always stepping the node with the earliest
//! [`NodeSim::next_event_time`], and migrates queued jobs between nodes
//! with [`NodeSim::steal`] / [`NodeSim::inject`] at event boundaries —
//! the stolen job is re-priced from scratch under the receiving node's
//! beliefs and plan cache.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex, PoisonError};

use hpu_core::exec::{Checkpoint, RecoveryPolicy, RunReport};
use hpu_core::CoreError;
use hpu_machine::{
    FaultInjector, FaultPlan, MachineConfig, MachineError, SimHpu, SimMachineParams,
};
use hpu_model::{
    batched_segment_time, compile, compile_timed, plan_cost, CacheStats, Calibration,
    CalibrationError, Calibrator, CalibratorConfig, LevelProfile, MachineParams, ModelError,
    Observation, Placement, Plan, PlanCache, PlanCost, Recurrence, ScheduleSpec,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
use hpu_obs::{
    FaultTag, JobOutcome, JobRecord, MetricsRegistry, ServeReport, SpanKind, SpanSet, TraceEvent,
    Track,
};

use crate::arbiter::{DeviceArbiter, EPS};
use crate::error::ServeError;
use crate::job::Workload;
use crate::queue::{dispatch_order, Policy, Rank};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum number of jobs waiting in the admission queue; arrivals
    /// beyond it are rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Dispatch policy.
    pub policy: Policy,
    /// Whether a GPU-using job may fall back to its CPU-only plan when
    /// the device lease is contended and the fallback finishes sooner.
    pub cpu_fallback: bool,
    /// Compile each job for this many cores instead of the whole CPU,
    /// letting several jobs' CPU segments run side by side in the pool
    /// (clamped to the machine's core count).
    pub cores_per_job: Option<usize>,
    /// Machine parameters to price and compile with, when they should
    /// differ from the served machine's own
    /// ([`MachineParams::from_config`]). This is the mis-specification
    /// knob for calibration experiments: the scheduler *believes* these
    /// numbers until the calibration loop corrects them. `p` always
    /// follows the served machine (and [`ServeConfig::cores_per_job`]).
    pub assumed: Option<MachineParams>,
    /// Closed-loop calibration (see the module docs). `None` — the
    /// default — keeps the open-loop behavior bit for bit.
    pub calibration: Option<CalibratorConfig>,
    /// Seeded device-fault injection plus the recovery knobs (see
    /// [`FaultConfig`]). `None` — the default — serves fault-free.
    pub faults: Option<FaultConfig>,
    /// Live metrics registry the scheduler samples into: admission and
    /// queueing counters, wait/latency/service histograms, calibration
    /// drift, arbiter occupancy, plan-compile time and — through the
    /// solo runs — the interpreter's per-segment timings. `None` — the
    /// default — serves unmetered with zero overhead.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Capacity of the per-fleet [`PlanCache`]: admission looks plans up
    /// by canonical [`hpu_model::PlanKey`] instead of recompiling, and a
    /// drift-triggered calibration replan becomes a generation bump plus
    /// lazy re-fill. The default holds
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`] plans; `None` disables caching
    /// and recompiles every admission (the pre-cache behavior).
    pub plan_cache: Option<usize>,
    /// Cross-job GPU kernel batching (see [`BatchPolicy`]). The default,
    /// [`BatchPolicy::Off`], keeps the unbatched scheduler bit for bit.
    pub batch: BatchPolicy,
    /// Level-boundary checkpointing of running jobs (see
    /// [`CheckpointPolicy`]). The default, [`CheckpointPolicy::Off`],
    /// records nothing and keeps the scheduler bit for bit; any other
    /// policy lets a fleet-level crash recover in-flight jobs from their
    /// last completed level instead of restarting them from scratch.
    pub checkpoint: CheckpointPolicy,
}

/// When a running job's state is captured at level boundaries.
///
/// Every segment boundary of a compiled plan is a consistent cut of the
/// breadth-first execution — levels below it are completely done, levels
/// above it untouched — so a checkpoint taken there resumes exactly (see
/// [`hpu_core::exec::run_sim_plan_resume`]). The policy decides *which*
/// boundaries are worth the capture cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// No checkpoints: crash recovery restarts in-flight jobs from
    /// scratch. Byte-identical to the pre-checkpointing scheduler.
    #[default]
    Off,
    /// Capture at every level boundary — maximal re-execution savings,
    /// maximal capture traffic.
    EveryLevel,
    /// Capture at every `k`-th level boundary (`k` clamped to ≥ 1, so
    /// `EveryKLevels(1)` is [`CheckpointPolicy::EveryLevel`]).
    EveryKLevels(u32),
}

impl CheckpointPolicy {
    /// Whether a checkpoint at resume-level `level` (levels `0..level`
    /// complete) is admitted by this policy.
    pub fn admits(&self, level: u32) -> bool {
        match *self {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::EveryLevel => level > 0,
            CheckpointPolicy::EveryKLevels(k) => level > 0 && level.is_multiple_of(k.max(1)),
        }
    }

    /// Prices a checkpoint interval against re-execution: with capture
    /// cost `c` per checkpoint and mean per-level cost `l`, checkpointing
    /// every `k` levels pays `c/k` per level while a crash re-executes
    /// `k/2` levels on average — total `c/k + l·k/2` per level, minimized
    /// at `k = √(2c/l)`. A ratio at or below 1 means capture is cheap
    /// enough to take every boundary.
    pub fn every_k_priced(checkpoint_cost: f64, mean_level_cost: f64) -> CheckpointPolicy {
        if checkpoint_cost <= 0.0
            || mean_level_cost <= 0.0
            || !checkpoint_cost.is_finite()
            || !mean_level_cost.is_finite()
        {
            return CheckpointPolicy::EveryLevel;
        }
        let k = (2.0 * checkpoint_cost / mean_level_cost).sqrt().ceil();
        if k <= 1.0 {
            CheckpointPolicy::EveryLevel
        } else {
            CheckpointPolicy::EveryKLevels(k as u32)
        }
    }
}

/// Cross-job GPU kernel batching policy.
///
/// At each dispatch event, when the job the policy would dispatch next
/// is GPU-using, the scheduler may *coalesce* other queued jobs with the
/// **same shape** — same algorithm kind, same calibration generation,
/// structurally identical compiled plan — into one batched kernel launch
/// per GPU segment: one merged upload, one launch, one download, so the
/// batch pays the fixed costs (`λ` per transfer edge, launch overhead
/// per level) **once** while every member still pays its own `δ·w`
/// payload and kernel waves (Kothapalli-style amortization).
///
/// Fairness invariants, enforced before any batch commits:
///
/// * The policy's dispatch-order winner always leads the batch — a batch
///   never runs ahead of a job the queue policy promised to serve first,
///   and the starvation (`skips`) accounting is identical to solo
///   dispatch.
/// * A batch must still start at the current event time; if coalescing
///   pushes the merged window later, the leader dispatches solo instead.
/// * A member whose projected completion (including its solo run's
///   overhang) would miss its deadline is dropped from the batch — a
///   lone job is never delayed past its deadline to benefit a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BatchPolicy {
    /// No coalescing: byte-identical to the pre-batching scheduler.
    #[default]
    Off,
    /// Coalesce up to `max_batch` same-shaped jobs per launch. A bound
    /// below 2 can never form a batch and behaves exactly like
    /// [`BatchPolicy::Off`].
    Coalesce {
        /// Largest number of jobs one launch may serve.
        max_batch: usize,
    },
}

impl BatchPolicy {
    /// The effective batch bound: `None` when batching is off (or the
    /// bound cannot fit two members).
    fn bound(&self) -> Option<usize> {
        match *self {
            BatchPolicy::Off => None,
            BatchPolicy::Coalesce { max_batch } => (max_batch >= 2).then_some(max_batch),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            policy: Policy::default(),
            cpu_fallback: true,
            cores_per_job: None,
            assumed: None,
            calibration: None,
            faults: None,
            metrics: None,
            plan_cache: Some(DEFAULT_PLAN_CACHE_CAPACITY),
            batch: BatchPolicy::Off,
            checkpoint: CheckpointPolicy::Off,
        }
    }
}

/// Fault injection and recovery configuration for [`serve_sim`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The seeded fault plan shared by every job's device traffic.
    pub plan: FaultPlan,
    /// Per-segment retry/backoff policy for transient faults.
    pub recovery: RecoveryPolicy,
    /// Consecutive failed GPU executions (retries exhausted) after which
    /// the GPU circuit breaker trips: queued GPU jobs degrade to their
    /// CPU-only shape and new arrivals compile CPU-only. Permanent
    /// device loss trips the breaker immediately.
    pub breaker_threshold: u32,
}

impl FaultConfig {
    /// A fault configuration with default recovery (3 retries, 16-unit
    /// doubling backoff) and a breaker tripping after 3 consecutive
    /// failed GPU executions.
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            recovery: RecoveryPolicy::default(),
            breaker_threshold: 3,
        }
    }
}

/// Live fault-handling state of one serving run.
struct FaultState {
    injector: Arc<Mutex<FaultInjector>>,
    recovery: RecoveryPolicy,
    breaker_threshold: u32,
    consecutive: u32,
    open: bool,
    trips: u64,
    /// A trip happened since the event loop last degraded the queue.
    pending_trip: bool,
}

impl FaultState {
    fn new(cfg: &FaultConfig) -> Self {
        FaultState {
            injector: FaultInjector::shared(cfg.plan.clone()),
            recovery: cfg.recovery,
            breaker_threshold: cfg.breaker_threshold.max(1),
            consecutive: 0,
            open: false,
            trips: 0,
            pending_trip: false,
        }
    }

    /// Folds the outcome of one GPU-using solo execution into the
    /// breaker: failures count consecutively, success resets, device
    /// loss trips immediately.
    fn on_gpu_result(&mut self, failed: bool, lost: bool) {
        if !failed {
            self.consecutive = 0;
            return;
        }
        self.consecutive += 1;
        if (lost || self.consecutive >= self.breaker_threshold) && !self.open {
            self.open = true;
            self.trips += 1;
            self.pending_trip = true;
        }
    }

    fn take_pending_trip(&mut self) -> bool {
        std::mem::take(&mut self.pending_trip)
    }

    fn fault_events(&self) -> u64 {
        self.injector
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .fault_events()
    }
}

/// The [`FaultTag`] a machine error surfaces as in a job record.
fn tag_of(e: &MachineError) -> FaultTag {
    if e.is_transient() {
        FaultTag::Transient
    } else if matches!(e, MachineError::DeviceLost) {
        FaultTag::DeviceLost
    } else {
        FaultTag::Error
    }
}

/// One job submission.
pub struct JobRequest {
    /// Human-readable label, carried into the records.
    pub name: String,
    /// The schedule to compile the job's plan from.
    pub spec: ScheduleSpec,
    /// Submission time (fleet virtual time).
    pub arrival: f64,
    /// Latest acceptable completion time, if any.
    pub deadline: Option<f64>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

impl JobRequest {
    /// A deadline-free job submission.
    pub fn new(
        name: impl Into<String>,
        spec: ScheduleSpec,
        arrival: f64,
        workload: Box<dyn Workload>,
    ) -> Self {
        JobRequest {
            name: name.into(),
            spec,
            arrival,
            deadline: None,
            workload,
        }
    }

    /// Attaches a completion deadline (fleet virtual time).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The full execution report of one completed job.
pub struct JobRun {
    /// Scheduler-assigned job id (submission order).
    pub id: u64,
    /// The job's label.
    pub name: String,
    /// Whether the CPU-only fallback plan ran instead of the primary.
    pub fallback: bool,
    /// The per-job run report (virtual time, per-level metrics, drift).
    pub report: RunReport,
}

/// Everything a serving run produces.
pub struct ServeOutput {
    /// Fleet-level metrics over every submitted job.
    pub report: ServeReport,
    /// Per-job [`RunReport`]s of the jobs that completed.
    pub runs: Vec<JobRun>,
    /// Typed rejection/cancellation/failure errors, in occurrence order.
    pub errors: Vec<ServeError>,
    /// Every GPU lease granted, ascending by start.
    pub gpu_leases: Vec<(f64, f64)>,
    /// Every CPU reservation granted `(start, end, cores)`.
    pub cpu_reservations: Vec<(f64, f64, usize)>,
    /// Drift-triggered replans performed (0 without calibration).
    pub replans: u64,
    /// Plan-cache counters, when [`ServeConfig::plan_cache`] was on:
    /// hits are admissions (or replan re-pricings) served by lookup,
    /// misses are fresh compiles.
    pub plan_cache: Option<CacheStats>,
    /// Final calibration state, when the loop was enabled.
    pub calibration: Option<Calibration>,
    /// Causal span tree of every dispatched job — a
    /// [`SpanKind::Job`] span per completion, parenting its
    /// [`SpanKind::Segment`] spans (the committed reservation windows),
    /// which parent [`SpanKind::Level`] spans (the solo run's level rows
    /// laid proportionally inside the segment window) and a
    /// [`SpanKind::Retry`] marker when recovery retried. Feed these to a
    /// [`hpu_obs::ChromeTrace`] process to see the tree as flow arrows.
    pub spans: Vec<TraceEvent>,
    /// Every cross-job batched launch formed, in commit order (empty
    /// under [`BatchPolicy::Off`]).
    pub batches: Vec<BatchRecord>,
}

/// One committed cross-job batched launch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Dispatch event time the batch formed at.
    pub at: f64,
    /// Member job ids, dispatch order (the policy's winner first).
    pub members: Vec<u64>,
    /// The merged GPU windows reserved, one `(start, end)` per batched
    /// GPU segment, plan order.
    pub windows: Vec<(f64, f64)>,
    /// Device time saved versus committing every member solo (the
    /// amortized launch overheads and transfer latencies).
    pub saved: f64,
}

/// Where one plan segment runs, from the arbiter's point of view.
#[derive(Debug, Clone, Copy)]
enum SegKind {
    Cpu { cores: usize },
    Gpu,
    Split { cores: usize },
}

/// Measured device demand of one plan segment.
#[derive(Debug, Clone, Copy)]
struct SegDemand {
    kind: SegKind,
    cpu: f64,
    gpu: f64,
}

impl SegDemand {
    fn len(&self) -> f64 {
        match self.kind {
            SegKind::Cpu { .. } => self.cpu,
            SegKind::Gpu => self.gpu,
            SegKind::Split { .. } => self.cpu.max(self.gpu),
        }
    }
}

/// One executable shape of a job: a plan's measured demands plus its
/// predicted cost, the solo run's report, and the predicted-vs-observed
/// per-unit evidence for the calibration loop.
struct Variant {
    cost: f64,
    /// The compiled plan the demands were measured under — shared with
    /// the plan cache, and compared on replan so an unchanged plan keeps
    /// its measured demands instead of re-running solo.
    plan: Arc<Plan>,
    demands: Vec<SegDemand>,
    report: RunReport,
    obs: Observation,
    /// Segment retries the solo run needed (0 without faults).
    retries: u32,
    /// Whether this shape is a CPU-only degradation of a GPU schedule.
    degraded: bool,
    /// Per-segment *fixed* device cost on the true machine (transfer
    /// latencies + launch overheads; 0 for CPU bands) — what cross-job
    /// batching amortizes. Aligned index for index with `demands`.
    fixed: Vec<f64>,
}

impl Variant {
    /// Virtual time of the solo run not covered by per-segment device
    /// demands: sync waits and retry backoff. The reservation calendars
    /// only hold the demands, so a job's true completion is its last
    /// reservation end plus this overhang.
    fn overhang(&self) -> f64 {
        let demand: f64 = self.demands.iter().map(|d| d.len()).sum();
        (self.report.virtual_time - demand).max(0.0)
    }
}

fn uses_gpu(v: &Variant) -> bool {
    v.demands
        .iter()
        .any(|d| matches!(d.kind, SegKind::Gpu | SegKind::Split { .. }))
}

/// Whether a schedule spec asks for the device at all (before compilation
/// possibly degrades it).
fn spec_wants_gpu(spec: &ScheduleSpec) -> bool {
    !matches!(spec, ScheduleSpec::Sequential | ScheduleSpec::CpuParallel)
}

struct Queued {
    id: u64,
    name: String,
    arrival: f64,
    deadline: Option<f64>,
    spec: ScheduleSpec,
    workload: Box<dyn Workload>,
    primary: Variant,
    fallback: Option<Variant>,
    skips: usize,
    /// Calibration generation the job was last priced under.
    generation: u64,
    /// The level-boundary checkpoint a recovered job resumes from; the
    /// variants were priced on the resume suffix only.
    checkpoint: Option<Checkpoint>,
}

/// Evidence of a dispatched job, released at its completion time.
struct PendingObs {
    end: f64,
    job: u64,
    obs: Observation,
    drift: f64,
}

/// Total order on event times (f64 `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrive(usize),
    Tick,
}

type EventHeap = BinaryHeap<Reverse<(Time, u64, Ev)>>;

/// Tick events draw sequence numbers from a band strictly above every
/// arrival sequence number, so at equal times arrivals always pop before
/// reservation-release ticks — regardless of *when* the arrival was
/// submitted. (The batch scheduler got this for free by numbering ticks
/// after the last arrival; incremental submission needs the bands.)
const TICK_SEQ_BASE: u64 = 1 << 32;

/// An accepted submission waiting for its arrival event to fire.
struct Pending {
    id: u64,
    job: JobRequest,
    /// Original fleet-time arrival of a migrated job, so its record and
    /// latency span the fleet submission rather than the migration.
    arrival_override: Option<f64>,
    /// Starvation credit a migrated job earned before migration.
    skips: usize,
    /// Checkpoint a crash-recovered job resumes from.
    checkpoint: Option<Checkpoint>,
}

/// A queued job removed from one node's scheduler for migration to
/// another ([`NodeSim::steal`] → [`NodeSim::inject`]).
///
/// Carries the *originally requested* schedule spec — not any degraded
/// CPU-only shape — so a healthy receiving node compiles the full hybrid
/// plan again, and the original arrival time, so latency keeps spanning
/// the fleet-level submission.
pub struct StolenJob {
    /// Fleet-assigned job id.
    pub id: u64,
    /// The job's label.
    pub name: String,
    /// The schedule the job was originally submitted with.
    pub spec: ScheduleSpec,
    /// Original submission time (fleet virtual time).
    pub arrival: f64,
    /// Latest acceptable completion time, if any.
    pub deadline: Option<f64>,
    /// Starvation credit (dispatch rounds skipped in favor of younger
    /// jobs) the job earned before migration. The receiving node's
    /// starvation bound counts from here, so migration never resets a
    /// senior job's place in line.
    pub skips: usize,
    /// The level-boundary checkpoint a crash-recovered job resumes from;
    /// `None` re-runs the job from scratch.
    pub checkpoint: Option<Checkpoint>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

/// Everything [`NodeSim::crash`] evicts from a crashed node, for the
/// fleet layer to re-place on healthy peers.
pub struct CrashReport {
    /// Jobs that were still queued (or not yet arrived) at the crash:
    /// nothing of theirs ran here, so they carry at most the checkpoint
    /// they arrived with.
    pub queued: Vec<StolenJob>,
    /// Jobs that were executing at the crash, their completion records
    /// revoked. Each carries its last admitted level-boundary checkpoint
    /// when the node's [`CheckpointPolicy`] recorded one in time.
    pub in_flight: Vec<StolenJob>,
}

/// A dispatched job's registry entry, kept until its completion time so a
/// node crash can tell finished work from lost work — and recover the
/// lost jobs from their last level-boundary checkpoint.
struct RunningJob {
    id: u64,
    name: String,
    spec: ScheduleSpec,
    arrival: f64,
    deadline: Option<f64>,
    skips: usize,
    workload: Box<dyn Workload>,
    /// Last reservation end: the completion time its record claims.
    end: f64,
    /// Admitted checkpoint boundaries `(time, resume_level)`, ascending;
    /// empty under [`CheckpointPolicy::Off`].
    boundaries: Vec<(f64, u32)>,
    /// Boundaries already counted into the `recovery.checkpoints` metric.
    next_boundary: usize,
    /// The checkpoint the job was dispatched from, if it was itself a
    /// resumed job — a second crash resumes from at least here.
    prior_ckpt: Option<Checkpoint>,
    /// Calendar entries to hand back if the node crashes mid-run (empty
    /// for batch members: a merged lease is not reclaimed per member).
    resvs: Vec<Resv>,
    /// Host state words a checkpoint of this job captures.
    words: u64,
}

/// Pricing inputs of one queued job, as a prospective thief needs them:
/// the originally requested spec plus the workload's recurrence, input
/// length, and executor level count.
pub struct QueuedShape {
    /// The schedule the job was originally submitted with.
    pub spec: ScheduleSpec,
    /// The workload's cost recurrence.
    pub rec: Recurrence,
    /// Input length in elements.
    pub n: u64,
    /// The executor's combine-level count.
    pub levels: u32,
}

/// The resumable form of [`serve_sim`]: one node's scheduler driven one
/// event at a time, with jobs submitted incrementally and queued jobs
/// stealable at event boundaries.
///
/// Equivalence contract: constructing a `NodeSim`, submitting every job
/// up front in order (ids `0..n`), and calling [`NodeSim::finish`] is
/// bit-for-bit identical to [`serve_sim`] — same records, same leases,
/// same event interleaving.
pub struct NodeSim {
    job_cfg: MachineConfig,
    serve: ServeConfig,
    arb: DeviceArbiter,
    queue: Vec<Queued>,
    records: Vec<JobRecord>,
    runs: Vec<JobRun>,
    errors: Vec<ServeError>,
    calibrator: Option<Calibrator>,
    pending: Vec<PendingObs>,
    replans: u64,
    fault_state: Option<FaultState>,
    spans: SpanSet,
    plan_cache: Option<PlanCache>,
    batches: Vec<BatchRecord>,
    heap: EventHeap,
    arrival_seq: u64,
    tick_seq: u64,
    slots: Vec<Option<Pending>>,
    now: f64,
    /// Dispatched jobs whose completion time is still in the future —
    /// what a crash loses. Entries are pruned as the clock passes their
    /// completion, so the registry never changes any observable output.
    running: Vec<RunningJob>,
}

impl NodeSim {
    /// A fresh node scheduler over the simulated machine `cfg` under the
    /// scheduler configuration `serve`. No events exist until
    /// [`NodeSim::submit`].
    pub fn new(cfg: &MachineConfig, serve: &ServeConfig) -> NodeSim {
        let mut errors: Vec<ServeError> = Vec::new();
        let mut job_cfg = cfg.clone();
        if let Some(k) = serve.cores_per_job {
            job_cfg.cpu.cores = k.clamp(1, cfg.cpu.cores);
        }
        let calibrator = match &serve.calibration {
            Some(c) => match Calibrator::new(c.clone()) {
                Ok(cal) => Some(cal),
                Err(e) => {
                    errors.push(ServeError::Calibration {
                        job: None,
                        source: e,
                    });
                    None
                }
            },
            None => None,
        };
        NodeSim {
            arb: DeviceArbiter::new(cfg.cpu.cores),
            job_cfg,
            queue: Vec::new(),
            records: Vec::new(),
            runs: Vec::new(),
            errors,
            calibrator,
            pending: Vec::new(),
            replans: 0,
            fault_state: serve.faults.as_ref().map(FaultState::new),
            spans: SpanSet::new(),
            plan_cache: serve.plan_cache.map(PlanCache::new),
            batches: Vec::new(),
            heap: BinaryHeap::new(),
            arrival_seq: 0,
            tick_seq: TICK_SEQ_BASE,
            slots: Vec::new(),
            now: 0.0,
            running: Vec::new(),
            serve: serve.clone(),
        }
    }

    /// Schedules the arrival of `job` under the caller-assigned id.
    /// Submission order is the arrival tie-break at equal arrival times.
    pub fn submit(&mut self, id: u64, job: JobRequest) {
        let at = job.arrival.max(0.0);
        let slot = self.slots.len();
        self.heap
            .push(Reverse((Time(at), self.arrival_seq, Ev::Arrive(slot))));
        self.arrival_seq += 1;
        self.slots.push(Some(Pending {
            id,
            job,
            arrival_override: None,
            skips: 0,
            checkpoint: None,
        }));
    }

    /// Re-submits a job stolen from another node, arriving here at `now`
    /// (clamped to this node's clock — a reservation calendar must never
    /// be offered a slot in its past). The job is re-priced from scratch
    /// under this node's beliefs, plan cache, and breaker state; its
    /// record keeps the original fleet-time arrival.
    pub fn inject(&mut self, stolen: StolenJob, now: f64) {
        let at = now.max(self.now).max(0.0);
        let slot = self.slots.len();
        self.heap
            .push(Reverse((Time(at), self.arrival_seq, Ev::Arrive(slot))));
        self.arrival_seq += 1;
        self.slots.push(Some(Pending {
            id: stolen.id,
            job: JobRequest {
                name: stolen.name,
                spec: stolen.spec,
                arrival: at,
                deadline: stolen.deadline,
                workload: stolen.workload,
            },
            arrival_override: Some(stolen.arrival),
            skips: stolen.skips,
            checkpoint: stolen.checkpoint,
        }));
    }

    /// Virtual time of the next unprocessed event, if any.
    pub fn next_event_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((t, _, _))| t.0)
    }

    /// Virtual time of the last processed event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Processes exactly one event — calibration-evidence drain, possible
    /// replan, the arrival itself (if one), breaker degradation, and a
    /// full dispatch round — and returns its time. `None` when no events
    /// remain.
    pub fn step(&mut self) -> Option<f64> {
        let Reverse((t, _, ev)) = self.heap.pop()?;
        let now = t.0;
        self.now = now;
        // Checkpoint boundaries the clock just passed become durable:
        // count them, then retire registry entries of completed jobs.
        if self.serve.checkpoint != CheckpointPolicy::Off {
            for r in self.running.iter_mut() {
                while r.next_boundary < r.boundaries.len()
                    && r.boundaries[r.next_boundary].0 <= now + EPS
                {
                    r.next_boundary += 1;
                    if let Some(m) = &self.serve.metrics {
                        m.inc("recovery.checkpoints", 1);
                    }
                }
            }
        }
        self.running.retain(|r| r.end > now + EPS);
        // Fold the evidence of every job that has completed by now; a
        // large enough drift triggers a re-price of the queue.
        if let Some(cal) = self.calibrator.as_mut() {
            let mut ready: Vec<PendingObs> = Vec::new();
            self.pending.retain_mut(|p| {
                if p.end <= now + EPS {
                    ready.push(PendingObs {
                        end: p.end,
                        job: p.job,
                        obs: p.obs,
                        drift: p.drift,
                    });
                    false
                } else {
                    true
                }
            });
            ready.sort_by(|a, b| a.end.total_cmp(&b.end).then(a.job.cmp(&b.job)));
            let mut trigger = false;
            for p in &ready {
                if let Some(m) = &self.serve.metrics {
                    m.observe("calibration.abs_drift", p.drift.abs());
                }
                if let Err(e) = cal.observe(&p.obs) {
                    self.errors.push(ServeError::Calibration {
                        job: Some(p.job),
                        source: e,
                    });
                }
                trigger |= cal.should_replan(p.drift);
            }
            if trigger {
                self.replans += 1;
                if let Some(m) = &self.serve.metrics {
                    m.inc("serve.replans", 1);
                    m.set_gauge("calibration.generation", self.replans as f64);
                }
                replan(
                    &mut self.queue,
                    &self.job_cfg,
                    &self.serve,
                    cal.calibration(),
                    self.replans,
                    &mut self.errors,
                    self.fault_state.as_mut(),
                    self.plan_cache.as_mut(),
                );
            }
        }
        if let Ev::Arrive(i) = ev {
            // Poison-free by construction: each arrival event fires once,
            // but a double fire must not panic the scheduler.
            if let Some(p) = self.slots[i].take() {
                let arrival = p.arrival_override.unwrap_or(now);
                admit(
                    p.id,
                    p.job,
                    now,
                    arrival,
                    p.skips,
                    p.checkpoint,
                    &self.job_cfg,
                    &self.serve,
                    &mut self.queue,
                    &mut self.records,
                    &mut self.errors,
                    self.calibrator.as_ref().map(|c| c.calibration()),
                    self.replans,
                    self.fault_state.as_mut(),
                    self.plan_cache.as_mut(),
                );
            }
        }
        // A breaker trip during admission or replanning degrades every
        // still-queued GPU job to its CPU-only shape before dispatch —
        // the device is off limits until (in this model) forever.
        if let Some(f) = self.fault_state.as_mut() {
            if f.take_pending_trip() {
                degrade_queue(
                    &mut self.queue,
                    &self.job_cfg,
                    &self.serve,
                    self.calibrator.as_ref().map(|c| c.calibration()),
                    &mut self.errors,
                    self.plan_cache.as_mut(),
                );
            }
        }
        dispatch_all(
            now,
            &self.serve,
            &mut self.arb,
            &mut self.queue,
            &mut self.records,
            &mut self.runs,
            &mut self.errors,
            &mut self.heap,
            &mut self.tick_seq,
            self.calibrator.is_some().then_some(&mut self.pending),
            self.fault_state.is_some(),
            &mut self.spans,
            &mut self.batches,
            &mut self.running,
        );
        if let Some(m) = &self.serve.metrics {
            m.set_gauge("serve.queue_depth", self.queue.len() as f64);
        }
        Some(now)
    }

    /// Drains every remaining event and closes the run into its
    /// [`ServeOutput`].
    pub fn finish(mut self) -> ServeOutput {
        while self.step().is_some() {}
        debug_assert!(
            self.queue.is_empty(),
            "every queued job reaches a terminal state"
        );

        if let Some(m) = &self.serve.metrics {
            m.set_gauge("arbiter.cpu_busy", self.arb.cpu_busy());
            m.set_gauge("arbiter.gpu_busy", self.arb.gpu_busy());
            m.set_gauge("arbiter.gpu_leases", self.arb.gpu_leases().len() as f64);
            m.set_gauge(
                "arbiter.cpu_reservations",
                self.arb.cpu_reservations().len() as f64,
            );
            m.set_gauge("serve.makespan", self.arb.makespan());
        }
        let mut report = ServeReport::new(self.records, self.arb.cpu_busy(), self.arb.gpu_busy());
        if let Some(f) = &self.fault_state {
            report = report.with_fault_counts(f.fault_events(), f.trips);
        }
        let cache_stats = self.plan_cache.as_ref().map(|c| c.stats());
        if let Some(s) = cache_stats {
            report = report.with_plan_cache(s.hits, s.misses);
        }
        ServeOutput {
            report,
            runs: self.runs,
            errors: self.errors,
            gpu_leases: self.arb.gpu_leases().to_vec(),
            cpu_reservations: self.arb.cpu_reservations().to_vec(),
            replans: self.replans,
            plan_cache: cache_stats,
            calibration: self.calibrator.map(|c| c.calibration().clone()),
            spans: self.spans.into_events(),
            batches: self.batches,
        }
    }

    // --- Fleet-facing observers and steal surface -------------------------

    /// Number of jobs waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The configured admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.serve.queue_capacity
    }

    /// Sum of predicted costs over every queued job: the node's believed
    /// backlog, in its own cost units.
    ///
    /// With [`BatchPolicy::Coalesce`] on, same-shaped batchable GPU jobs
    /// in the queue will share launches, so the backlog is discounted by
    /// the fixed costs batching will amortize — a batching node looks
    /// cheaper to a fleet router than an identically-loaded unbatched
    /// one, steering same-shaped work toward it.
    pub fn queued_cost(&self) -> f64 {
        let base: f64 = self.queue.iter().map(|q| q.primary.cost).sum();
        let Some(bound) = self.serve.batch.bound() else {
            return base;
        };
        let mut grouped = vec![false; self.queue.len()];
        let mut discount = 0.0;
        for i in 0..self.queue.len() {
            if grouped[i] || !batchable(&self.queue[i].primary) {
                continue;
            }
            grouped[i] = true;
            let mut size = 1usize;
            let mut shared: f64 = self.queue[i].primary.fixed.iter().sum();
            // Indexes two slices (`grouped` and the queue) in lockstep.
            #[allow(clippy::needless_range_loop)]
            for j in (i + 1)..self.queue.len() {
                if grouped[j] || !same_batch_shape(&self.queue[i], &self.queue[j]) {
                    continue;
                }
                grouped[j] = true;
                size += 1;
                shared = shared.min(self.queue[j].primary.fixed.iter().sum());
            }
            // k jobs in ⌈k / bound⌉ launches: the other copies of the
            // shared fixed cost amortize away.
            let amortized = size - size.div_ceil(bound);
            discount += amortized as f64 * shared;
        }
        (base - discount).max(0.0)
    }

    /// Cross-job batched launches committed so far.
    pub fn batches_formed(&self) -> u64 {
        self.batches.len() as u64
    }

    /// End of the last committed reservation — how far ahead of `now` the
    /// node's calendars already stretch.
    pub fn horizon(&self) -> f64 {
        self.arb.makespan()
    }

    /// Whether the GPU circuit breaker is open (the device is off limits
    /// and GPU jobs compile straight to their CPU-only degradation).
    pub fn breaker_open(&self) -> bool {
        self.fault_state.as_ref().is_some_and(|f| f.open)
    }

    /// Times the GPU circuit breaker has tripped.
    pub fn breaker_trips(&self) -> u64 {
        self.fault_state.as_ref().map_or(0, |f| f.trips)
    }

    /// Drift-triggered calibration replans performed so far — this node's
    /// pricing generation. A peer's drift never changes it.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Current plan-cache generation, when caching is on.
    pub fn cache_generation(&self) -> Option<u64> {
        self.plan_cache.as_ref().map(|c| c.generation())
    }

    /// Ids of every queued job, queue order.
    pub fn queued_ids(&self) -> Vec<u64> {
        self.queue.iter().map(|q| q.id).collect()
    }

    /// Ids of the queued jobs a thief may take, lowest dispatch priority
    /// first: the backfillable suffix beyond the policy's rigid prefix.
    /// A rigid (FIFO or starvation-overdue) entry is this node's promise
    /// to run next — stealing it would re-order what the policy already
    /// guaranteed.
    pub fn steal_candidates(&self) -> Vec<u64> {
        let ranks: Vec<Rank> = self
            .queue
            .iter()
            .map(|q| Rank {
                seq: q.id,
                cost: q.primary.cost,
                skips: q.skips,
            })
            .collect();
        let (order, rigid) = dispatch_order(&self.serve.policy, &ranks);
        order
            .get(rigid..)
            .unwrap_or(&[])
            .iter()
            .rev()
            .map(|&qi| self.queue[qi].id)
            .collect()
    }

    /// Pricing inputs of the queued job `id`, for a prospective thief to
    /// price under its own beliefs. `None` if the job is gone (or its
    /// level count no longer computes).
    pub fn queued_shape(&self, id: u64) -> Option<QueuedShape> {
        let q = self.queue.iter().find(|q| q.id == id)?;
        Some(QueuedShape {
            spec: q.spec.clone(),
            rec: q.workload.recurrence(),
            n: q.workload.input_len() as u64,
            levels: q.workload.exec_levels().ok()?,
        })
    }

    /// Removes the queued job `id` for migration. The job keeps its
    /// original spec, arrival, starvation credit and (for a recovered
    /// job) checkpoint; its compiled variants stay behind (the receiving
    /// node re-prices from scratch).
    pub fn steal(&mut self, id: u64) -> Option<StolenJob> {
        let qi = self.queue.iter().position(|q| q.id == id)?;
        let q = self.queue.remove(qi);
        if let Some(m) = &self.serve.metrics {
            m.inc("serve.stolen", 1);
        }
        Some(StolenJob {
            id: q.id,
            name: q.name,
            spec: q.spec,
            arrival: q.arrival,
            deadline: q.deadline,
            skips: q.skips,
            checkpoint: q.checkpoint,
            workload: q.workload,
        })
    }

    /// Starvation credit of the queued job `id`, if it is queued here.
    pub fn queued_skips(&self, id: u64) -> Option<usize> {
        self.queue.iter().find(|q| q.id == id).map(|q| q.skips)
    }

    /// Ids of the dispatched jobs whose completion is still ahead of the
    /// node's clock — what [`NodeSim::crash`] would lose right now.
    pub fn running_ids(&self) -> Vec<u64> {
        self.running.iter().map(|r| r.id).collect()
    }

    /// Kills the node at time `at`: every queued, not-yet-arrived and
    /// still-executing job is evicted, and the in-flight jobs' completion
    /// records (written optimistically at dispatch) are revoked — a crash
    /// must never count lost work as done. In-flight jobs carry their
    /// last level-boundary checkpoint admitted **before** `at` (work past
    /// the crash instant was never captured), falling back to the
    /// checkpoint they were dispatched from, if any. Their calendar
    /// reservations are released so a later [`NodeSim::rejoin`] starts
    /// with clean calendars (merged batch leases stay: a batch member's
    /// share of one lease is not separable). Spans of revoked jobs remain
    /// in the trace — a trace records what was attempted, not what
    /// survived.
    pub fn crash(&mut self, at: f64) -> CrashReport {
        self.now = self.now.max(at);
        let mut queued: Vec<StolenJob> = Vec::new();
        for q in self.queue.drain(..) {
            queued.push(StolenJob {
                id: q.id,
                name: q.name,
                spec: q.spec,
                arrival: q.arrival,
                deadline: q.deadline,
                skips: q.skips,
                checkpoint: q.checkpoint,
                workload: q.workload,
            });
        }
        // Submissions whose arrival event had not fired yet die with the
        // event heap; they lose nothing but their place in time.
        for slot in self.slots.iter_mut() {
            if let Some(p) = slot.take() {
                queued.push(StolenJob {
                    id: p.id,
                    name: p.job.name,
                    spec: p.job.spec,
                    arrival: p.arrival_override.unwrap_or(p.job.arrival),
                    deadline: p.job.deadline,
                    skips: p.skips,
                    checkpoint: p.checkpoint,
                    workload: p.job.workload,
                });
            }
        }
        self.heap.clear();
        let mut in_flight: Vec<StolenJob> = Vec::new();
        let mut lost: Vec<u64> = Vec::new();
        for r in std::mem::take(&mut self.running) {
            if r.end <= at + EPS {
                continue; // finished before the crash — its record stands
            }
            lost.push(r.id);
            release_all(&mut self.arb, &r.resvs);
            let checkpoint = r
                .boundaries
                .iter()
                .rev()
                .find(|&&(t, _)| t <= at + EPS)
                .map(|&(_, level)| Checkpoint {
                    level,
                    resident_words: r.words,
                    generation: self.replans,
                })
                .or(r.prior_ckpt);
            in_flight.push(StolenJob {
                id: r.id,
                name: r.name,
                spec: r.spec,
                arrival: r.arrival,
                deadline: r.deadline,
                skips: r.skips,
                checkpoint,
                workload: r.workload,
            });
        }
        self.records.retain(|rec| {
            !(matches!(rec.outcome, JobOutcome::Completed) && lost.contains(&rec.id))
        });
        self.runs.retain(|run| !lost.contains(&run.id));
        self.pending.retain(|p| !lost.contains(&p.job));
        CrashReport { queued, in_flight }
    }

    /// Rejoins a crashed node to service at time `now`, cold: the plan
    /// cache's generation is bumped (cached demands priced before the
    /// crash are not trusted across it) and the pricing generation
    /// advances with it, so post-rejoin admissions never batch with
    /// pre-crash shapes. Completed records, calibration knowledge and
    /// breaker state survive — the crash lost the machine, not the ledger.
    pub fn rejoin(&mut self, now: f64) {
        self.now = self.now.max(now);
        if let Some(c) = self.plan_cache.as_mut() {
            c.bump_generation();
        }
        self.replans += 1;
        if let Some(m) = &self.serve.metrics {
            m.set_gauge("calibration.generation", self.replans as f64);
        }
    }

    /// Prices one job shape under this node's current beliefs: assumed
    /// or configured machine parameters, corrected by calibration, with
    /// an open breaker substituting the CPU-only degradation for any
    /// GPU-using spec. Served by this node's [`PlanCache`] when one is
    /// attached, so repeated router probes of hot shapes are lookups.
    /// `None` when the shape fails to compile.
    pub fn price(&mut self, shape: &QueuedShape) -> Option<f64> {
        let cal = self.calibrator.as_ref().map(|c| c.calibration());
        let params = pricing_params(&self.job_cfg, &self.serve, cal).ok()?;
        let rec = match cal {
            Some(c) => c.scale_recurrence(&shape.rec),
            None => shape.rec.clone(),
        };
        let cpu_only = ScheduleSpec::CpuParallel;
        let breaker_open = self.fault_state.as_ref().is_some_and(|f| f.open);
        let spec = if breaker_open && spec_wants_gpu(&shape.spec) {
            &cpu_only
        } else {
            &shape.spec
        };
        compile_through(
            spec,
            &params,
            &rec,
            shape.n,
            shape.levels,
            self.serve.metrics.as_ref(),
            self.plan_cache.as_mut(),
        )
        .ok()
        .map(|(_, cost)| cost.total)
    }

    /// This node's believed host↔device transfer time for `words` words,
    /// under current calibration — the router's data-affinity discount:
    /// what routing a non-resident input here would cost.
    pub fn believed_transfer_time(&self, words: u64) -> f64 {
        let cal = self.calibrator.as_ref().map(|c| c.calibration());
        match pricing_params(&self.job_cfg, &self.serve, cal) {
            Ok(p) => p.transfer_time(words),
            Err(_) => MachineParams::from_config(&self.job_cfg).transfer_time(words),
        }
    }
}

/// Serves `jobs` over one shared simulated machine `cfg` under the
/// scheduler configuration `serve`. Deterministic: equal inputs give
/// equal outputs, event for event.
pub fn serve_sim(cfg: &MachineConfig, serve: &ServeConfig, jobs: Vec<JobRequest>) -> ServeOutput {
    let mut node = NodeSim::new(cfg, serve);
    for (i, job) in jobs.into_iter().enumerate() {
        node.submit(i as u64, job);
    }
    node.finish()
}

fn rejected_record(
    id: u64,
    name: &str,
    outcome: JobOutcome,
    at: f64,
    generation: u64,
    metrics: Option<&MetricsRegistry>,
) -> JobRecord {
    let retries = match outcome {
        JobOutcome::Failed { retries, .. } => retries,
        _ => 0,
    };
    if let Some(m) = metrics {
        match outcome {
            JobOutcome::QueueFull => m.inc("serve.rejected", 1),
            JobOutcome::Failed { .. } => m.inc("serve.failed", 1),
            _ => {}
        }
    }
    JobRecord {
        id,
        name: name.to_string(),
        outcome,
        arrival: at,
        start: at,
        end: at,
        predicted: 0.0,
        service: 0.0,
        fallback: false,
        retries,
        degraded: false,
        calibration_generation: generation,
    }
}

/// The parameters jobs are priced and compiled with: the configured or
/// assumed machine, under the current calibration corrections. The CPU
/// core count always follows the per-job machine slice — calibration
/// corrects speeds and costs, never the structure.
fn pricing_params(
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    cal: Option<&Calibration>,
) -> Result<MachineParams, CalibrationError> {
    let mut params = serve
        .assumed
        .clone()
        .unwrap_or_else(|| MachineParams::from_config(job_cfg));
    params.p = job_cfg.cpu.cores;
    match cal {
        Some(c) => params.recalibrated(c),
        None => Ok(params),
    }
}

/// Why one pricing attempt failed (mapped onto [`ServeError`] with the
/// job id by the caller).
enum VariantError {
    Compile(ModelError),
    Run {
        source: CoreError,
        /// Segment retries spent before the run was given up on.
        retries: u32,
    },
}

impl VariantError {
    fn into_serve(self, job: u64) -> ServeError {
        match self {
            VariantError::Compile(source) => ServeError::Compile { job, source },
            VariantError::Run { source, .. } => ServeError::Run { job, source },
        }
    }

    /// The machine fault behind this failure, if it was one.
    fn machine_fault(&self) -> Option<&MachineError> {
        match self {
            VariantError::Run {
                source: CoreError::Machine(m),
                ..
            } => Some(m),
            _ => None,
        }
    }

    fn retries(&self) -> u32 {
        match self {
            VariantError::Run { retries, .. } => *retries,
            VariantError::Compile(_) => 0,
        }
    }
}

/// Compiles (or cache-looks-up) `spec` under `params`, prices it, and
/// solo-runs it on the true machine to measure demands and calibration
/// evidence. With a cache attached, admission is a [`PlanCache`] lookup
/// keyed by canonical plan key — only misses compile. With a metrics
/// registry attached, compilation is timed through [`compile_timed`],
/// cache traffic lands in the `plan_cache.*` counters, and the solo run
/// samples the interpreter's per-segment timings.
#[allow(clippy::too_many_arguments)]
fn build_variant(
    workload: &mut dyn Workload,
    spec: &ScheduleSpec,
    job_cfg: &MachineConfig,
    params: &MachineParams,
    rec: &Recurrence,
    n: u64,
    levels: u32,
    faults: Option<&FaultState>,
    metrics: Option<&Arc<MetricsRegistry>>,
    cache: Option<&mut PlanCache>,
) -> Result<Variant, VariantError> {
    let (plan, cost) = compile_through(spec, params, rec, n, levels, metrics, cache)?;
    // CPU-only plans never touch the device: they are structurally immune
    // to injected faults, so the injector is not attached.
    let faults = if plan.uses_gpu() { faults } else { None };
    solo(workload, job_cfg, plan, cost, params, faults, metrics, None)
}

/// The resume form of [`build_variant`]: compiles the **full** plan
/// through the cache (sharing compiles with fresh admissions of the same
/// shape), clips it to the checkpoint's resume suffix, prices the suffix
/// alone, and solo-runs it through [`Workload::run_plan_resume`] — the
/// measured demands and cost cover only the work still owed.
#[allow(clippy::too_many_arguments)]
fn build_variant_resume(
    workload: &mut dyn Workload,
    spec: &ScheduleSpec,
    job_cfg: &MachineConfig,
    params: &MachineParams,
    rec: &Recurrence,
    n: u64,
    levels: u32,
    ckpt: &Checkpoint,
    metrics: Option<&Arc<MetricsRegistry>>,
    cache: Option<&mut PlanCache>,
) -> Result<Variant, VariantError> {
    let (plan, _) = compile_through(spec, params, rec, n, levels, metrics, cache)?;
    let suffix = plan
        .resume_from_level(ckpt.level)
        .map_err(VariantError::Compile)?;
    let profile = LevelProfile::new(params, rec, n);
    let cost = plan_cost(&profile, &suffix).map_err(VariantError::Compile)?;
    solo(
        workload,
        job_cfg,
        Arc::new(suffix),
        Arc::new(cost),
        params,
        None,
        metrics,
        Some(ckpt),
    )
}

/// The compile-and-price step of [`build_variant`]: a cache lookup when
/// a [`PlanCache`] is attached, a fresh [`compile`] + [`plan_cost`]
/// otherwise.
fn compile_through(
    spec: &ScheduleSpec,
    params: &MachineParams,
    rec: &Recurrence,
    n: u64,
    levels: u32,
    metrics: Option<&Arc<MetricsRegistry>>,
    cache: Option<&mut PlanCache>,
) -> Result<(Arc<Plan>, Arc<PlanCost>), VariantError> {
    match cache {
        Some(c) => c
            .lookup_or_compile(spec, params, rec, n, levels, metrics.map(|m| m.as_ref()))
            .map_err(VariantError::Compile),
        None => {
            let plan = match metrics {
                Some(m) => compile_timed(spec, params, rec, n, levels, m),
                None => compile(spec, params, rec, n, levels),
            }
            .map_err(VariantError::Compile)?;
            let profile = LevelProfile::new(params, rec, n);
            let cost = plan_cost(&profile, &plan).map_err(VariantError::Compile)?;
            Ok((Arc::new(plan), Arc::new(cost)))
        }
    }
}

/// Solo-runs the job's plan on a private virtual clock and folds the
/// per-level metrics into per-segment device demands plus the
/// per-unit predicted-vs-observed evidence.
#[allow(clippy::too_many_arguments)]
fn solo(
    workload: &mut dyn Workload,
    job_cfg: &MachineConfig,
    plan: Arc<Plan>,
    cost: Arc<PlanCost>,
    params: &MachineParams,
    faults: Option<&FaultState>,
    metrics: Option<&Arc<MetricsRegistry>>,
    ckpt: Option<&Checkpoint>,
) -> Result<Variant, VariantError> {
    let mut hpu = match faults {
        Some(f) => SimHpu::new(job_cfg.clone()).with_faults(f.injector.clone()),
        None => SimHpu::new(job_cfg.clone()),
    };
    let (result, retries) = match (ckpt, faults) {
        (Some(ck), _) => (workload.run_plan_resume(&mut hpu, &plan, ck), 0),
        (None, Some(f)) => {
            let (r, rs) = workload.run_plan_recover(&mut hpu, &plan, &f.recovery);
            (r, rs.retries)
        }
        (None, None) => match metrics {
            Some(m) => (workload.run_plan_metered(&mut hpu, &plan, m.clone()), 0),
            None => (workload.run_plan(&mut hpu, &plan), 0),
        },
    };
    let report = match result {
        Ok(r) => r,
        Err(source) => return Err(VariantError::Run { source, retries }),
    };
    let segs = plan.segments.len();
    let mut cpu = vec![0.0; segs];
    let mut gpu = vec![0.0; segs];
    for row in &report.levels {
        // `run_sim_plan` rejects empty plans before this point, so
        // `segs >= 1`; the saturating clamp keeps the index total even if
        // that invariant ever moves.
        let si = row
            .segment
            .map(|s| s as usize)
            .or_else(|| plan.segment_of(row.level).map(|(i, _)| i))
            .unwrap_or(0)
            .min(segs.saturating_sub(1));
        cpu[si] += row.cpu_time;
        // The bus is only ever driven for the device: transfers extend
        // the segment's GPU lease.
        gpu[si] += row.gpu_time + row.bus_time;
    }
    let demands = plan
        .segments
        .iter()
        .enumerate()
        .map(|(i, seg)| SegDemand {
            kind: match seg.placement {
                Placement::Cpu { cores } => SegKind::Cpu { cores },
                Placement::Gpu => SegKind::Gpu,
                Placement::Split { .. } => SegKind::Split {
                    cores: job_cfg.cpu.cores,
                },
            },
            cpu: cpu[i],
            gpu: gpu[i],
        })
        .collect();
    let predicted_bus: f64 = plan
        .segments
        .iter()
        .flat_map(|s| &s.transfers)
        .map(|t| params.transfer_time(t.words))
        .sum();
    let obs = Observation {
        predicted_cpu: cost.cpu,
        predicted_gpu: (cost.gpu - predicted_bus).max(0.0),
        predicted_bus,
        observed_cpu: report.levels.iter().map(|r| r.cpu_time).sum(),
        observed_gpu: report.levels.iter().map(|r| r.gpu_time).sum(),
        observed_bus: report.levels.iter().map(|r| r.bus_time).sum(),
    };
    // The fixed costs batching can amortize are properties of the *true*
    // machine the demands were measured on — the bus latency actually
    // paid per transfer edge and the launch overhead actually paid per
    // level — never of the believed (assumed/calibrated) parameters.
    let fixed = (0..plan.segments.len())
        .map(|i| plan.segment_fixed_cost(i, job_cfg.bus.lambda, job_cfg.gpu.launch_overhead))
        .collect();
    Ok(Variant {
        cost: cost.total,
        plan,
        demands,
        report,
        obs,
        retries,
        degraded: false,
        fixed,
    })
}

/// Re-prices a variant whose recompiled plan came out identical: the
/// admission cost and predicted evidence follow the corrected
/// parameters, while the measured demands and report — deterministic
/// replays on the *true* machine, which calibration never changes — are
/// kept, skipping the redundant solo run.
fn reprice(v: &mut Variant, plan: Arc<Plan>, cost: &PlanCost, params: &MachineParams) {
    let predicted_bus: f64 = plan
        .segments
        .iter()
        .flat_map(|s| &s.transfers)
        .map(|t| params.transfer_time(t.words))
        .sum();
    v.obs.predicted_cpu = cost.cpu;
    v.obs.predicted_gpu = (cost.gpu - predicted_bus).max(0.0);
    v.obs.predicted_bus = predicted_bus;
    v.cost = cost.total;
    v.plan = plan;
}

/// Admits one arrival: price, compile, solo-measure, queue. `now` is the
/// admission event's time; `arrival` is the time the job's record (and
/// latency) spans from — they differ only for migrated jobs, whose
/// records keep the original fleet-time submission. `skips` carries a
/// migrated job's earned starvation credit; `ckpt` makes this a crash
/// recovery that resumes from a level-boundary checkpoint.
#[allow(clippy::too_many_arguments)]
fn admit(
    id: u64,
    mut job: JobRequest,
    now: f64,
    arrival: f64,
    skips: usize,
    ckpt: Option<Checkpoint>,
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    queue: &mut Vec<Queued>,
    records: &mut Vec<JobRecord>,
    errors: &mut Vec<ServeError>,
    cal: Option<&Calibration>,
    generation: u64,
    mut faults: Option<&mut FaultState>,
    mut cache: Option<&mut PlanCache>,
) {
    if let Some(m) = &serve.metrics {
        m.inc("serve.submitted", 1);
    }
    if queue.len() >= serve.queue_capacity {
        errors.push(ServeError::QueueFull {
            job: id,
            capacity: serve.queue_capacity,
        });
        records.push(rejected_record(
            id,
            &job.name,
            JobOutcome::QueueFull,
            now,
            generation,
            serve.metrics.as_deref(),
        ));
        return;
    }

    let failed = |fault: FaultTag, retries: u32| JobOutcome::Failed { fault, retries };

    let params = match pricing_params(job_cfg, serve, cal) {
        Ok(p) => p,
        Err(e) => {
            errors.push(ServeError::Calibration {
                job: Some(id),
                source: e,
            });
            records.push(rejected_record(
                id,
                &job.name,
                failed(FaultTag::Error, 0),
                now,
                generation,
                serve.metrics.as_deref(),
            ));
            return;
        }
    };
    let base_rec = job.workload.recurrence();
    let rec = match cal {
        Some(c) => c.scale_recurrence(&base_rec),
        None => base_rec,
    };
    let n = job.workload.input_len() as u64;
    let levels = match job.workload.exec_levels() {
        Ok(l) => l,
        Err(e) => {
            errors.push(ServeError::Run { job: id, source: e });
            records.push(rejected_record(
                id,
                &job.name,
                failed(FaultTag::Error, 0),
                now,
                generation,
                serve.metrics.as_deref(),
            ));
            return;
        }
    };
    // With the breaker open the device is off limits: GPU specs compile
    // straight to their CPU-only degradation, counted as degraded.
    let breaker_open = faults.as_ref().is_some_and(|f| f.open);
    let cpu_only = ScheduleSpec::CpuParallel;
    let spec = if breaker_open { &cpu_only } else { &job.spec };
    // A crash-recovered job resumes from its checkpoint: the full plan
    // compiles (cache-shared with fresh admissions of the same shape) but
    // only the remaining suffix is priced, measured and reserved. The
    // fault injector is bypassed — a resume replays saved state rather
    // than driving fresh traffic through the injector's deterministic
    // stream — and no CPU-only fallback is compiled (a fallback would
    // re-run from scratch, forfeiting the saved levels). If the resume
    // shape fails to build, fall through to a normal restart admission.
    if let Some(ck) = ckpt.filter(|c| c.level > 0) {
        match build_variant_resume(
            job.workload.as_mut(),
            spec,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
            &ck,
            serve.metrics.as_ref(),
            cache.as_deref_mut(),
        ) {
            Ok(v) => {
                if let Some(m) = &serve.metrics {
                    m.inc("recovery.resumed", 1);
                }
                queue.push(Queued {
                    id,
                    name: job.name,
                    arrival,
                    deadline: job.deadline,
                    spec: job.spec,
                    workload: job.workload,
                    primary: v,
                    fallback: None,
                    skips,
                    generation,
                    checkpoint: Some(ck),
                });
                return;
            }
            Err(e) => errors.push(e.into_serve(id)),
        }
    }
    let primary = match build_variant(
        job.workload.as_mut(),
        spec,
        job_cfg,
        &params,
        &rec,
        n,
        levels,
        faults.as_deref(),
        serve.metrics.as_ref(),
        cache.as_deref_mut(),
    ) {
        Ok(mut v) => {
            if uses_gpu(&v) {
                if let Some(f) = faults.as_deref_mut() {
                    f.on_gpu_result(false, false);
                }
            } else if breaker_open && spec_wants_gpu(&job.spec) {
                v.degraded = true;
            }
            v
        }
        Err(e) => {
            // A device fault that survived the retry budget: feed the
            // breaker, then re-compile this job segment-granularly to its
            // CPU-only shape instead of failing it.
            let Some(m) = e.machine_fault().cloned() else {
                let retries = e.retries();
                errors.push(e.into_serve(id));
                records.push(rejected_record(
                    id,
                    &job.name,
                    failed(FaultTag::Error, retries),
                    now,
                    generation,
                    serve.metrics.as_deref(),
                ));
                return;
            };
            let retries = e.retries();
            let tag = tag_of(&m);
            if let Some(f) = faults {
                f.on_gpu_result(true, matches!(m, MachineError::DeviceLost));
            }
            errors.push(e.into_serve(id));
            match build_variant(
                job.workload.as_mut(),
                &cpu_only,
                job_cfg,
                &params,
                &rec,
                n,
                levels,
                None,
                serve.metrics.as_ref(),
                cache.as_deref_mut(),
            ) {
                Ok(mut v) => {
                    v.degraded = true;
                    v.retries = retries;
                    v
                }
                Err(e2) => {
                    errors.push(e2.into_serve(id));
                    records.push(rejected_record(
                        id,
                        &job.name,
                        failed(tag, retries),
                        now,
                        generation,
                        serve.metrics.as_deref(),
                    ));
                    return;
                }
            }
        }
    };
    // A GPU-using job also carries its CPU-only shape, so dispatch can
    // route around a contended device lease.
    let fallback = if serve.cpu_fallback && uses_gpu(&primary) {
        build_variant(
            job.workload.as_mut(),
            &cpu_only,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
            None,
            serve.metrics.as_ref(),
            cache,
        )
        .ok()
    } else {
        None
    };
    queue.push(Queued {
        id,
        name: job.name,
        arrival,
        deadline: job.deadline,
        spec: job.spec,
        workload: job.workload,
        primary,
        fallback,
        skips,
        generation,
        checkpoint: None,
    });
}

/// Re-prices every still-queued job under the corrected parameters. A
/// job whose re-pricing fails keeps its previous variants — replanning
/// improves estimates, it must never kill a job.
///
/// With a [`PlanCache`] attached (and no fault injection in play), a
/// replan is a generation bump plus lazy re-fill: each queued job's spec
/// recompiles through the cache — shared shapes compile once — and a job
/// whose plan came out *identical* merely re-prices in place, skipping
/// the redundant solo run (its measured demands replay the true machine,
/// which calibration never changes). Only jobs whose plan structurally
/// changed under the corrected parameters re-measure.
///
/// With the GPU circuit breaker open, GPU specs re-compile straight to
/// their CPU-only degradation: a replan racing a breaker trip must not
/// compile (and solo-run) the doomed GPU shape a second time. Only jobs
/// still in the queue are touched — a cancelled or dispatched job is
/// already gone and can never be re-admitted by a replan.
#[allow(clippy::too_many_arguments)]
fn replan(
    queue: &mut [Queued],
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    cal: &Calibration,
    generation: u64,
    errors: &mut Vec<ServeError>,
    mut faults: Option<&mut FaultState>,
    mut cache: Option<&mut PlanCache>,
) {
    if let Some(c) = cache.as_deref_mut() {
        c.bump_generation();
    }
    let breaker_open = faults.as_ref().is_some_and(|f| f.open);
    let cpu_only = ScheduleSpec::CpuParallel;
    for q in queue.iter_mut() {
        // A crash-recovered job's variants cover only its resume suffix;
        // re-pricing the full shape here would silently turn the resume
        // into a restart. It keeps its pre-replan price (and generation,
        // so it never batches with re-priced shapes).
        if q.checkpoint.is_some() {
            continue;
        }
        let params = match pricing_params(job_cfg, serve, Some(cal)) {
            Ok(p) => p,
            Err(e) => {
                errors.push(ServeError::Calibration {
                    job: Some(q.id),
                    source: e,
                });
                continue;
            }
        };
        let rec = cal.scale_recurrence(&q.workload.recurrence());
        let n = q.workload.input_len() as u64;
        let Ok(levels) = q.workload.exec_levels() else {
            continue;
        };
        let spec = if breaker_open { &cpu_only } else { &q.spec };
        // Lazy fast path: unchanged plan → re-price only. Fault
        // injection forces the slow path so the injector's event stream
        // (fed by solo runs) stays exactly as before.
        if faults.is_none() {
            if let Some(c) = cache.as_deref_mut() {
                let metrics = serve.metrics.as_deref();
                if let Ok((plan, cost)) =
                    c.lookup_or_compile(spec, &params, &rec, n, levels, metrics)
                {
                    if *plan == *q.primary.plan {
                        reprice(&mut q.primary, plan, &cost, &params);
                        if let Some(fb) = q.fallback.as_mut() {
                            match c.lookup_or_compile(&cpu_only, &params, &rec, n, levels, metrics)
                            {
                                Ok((fp, fc)) if *fp == *fb.plan => reprice(fb, fp, &fc, &params),
                                _ => {
                                    q.fallback = build_variant(
                                        q.workload.as_mut(),
                                        &cpu_only,
                                        job_cfg,
                                        &params,
                                        &rec,
                                        n,
                                        levels,
                                        None,
                                        serve.metrics.as_ref(),
                                        Some(c),
                                    )
                                    .ok();
                                }
                            }
                        }
                        q.generation = generation;
                        continue;
                    }
                }
            }
        }
        match build_variant(
            q.workload.as_mut(),
            spec,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
            faults.as_deref(),
            serve.metrics.as_ref(),
            cache.as_deref_mut(),
        ) {
            Ok(mut v) => {
                if uses_gpu(&v) {
                    if let Some(f) = faults.as_deref_mut() {
                        f.on_gpu_result(false, false);
                    }
                } else if breaker_open && spec_wants_gpu(&q.spec) {
                    v.degraded = true;
                }
                v.retries += q.primary.retries;
                q.primary = v;
                q.generation = generation;
                q.fallback = if serve.cpu_fallback && uses_gpu(&q.primary) {
                    build_variant(
                        q.workload.as_mut(),
                        &cpu_only,
                        job_cfg,
                        &params,
                        &rec,
                        n,
                        levels,
                        None,
                        serve.metrics.as_ref(),
                        cache.as_deref_mut(),
                    )
                    .ok()
                } else {
                    None
                };
            }
            Err(e) => {
                if let Some(m) = e.machine_fault() {
                    let lost = matches!(m, MachineError::DeviceLost);
                    q.primary.retries += e.retries();
                    if let Some(f) = faults.as_deref_mut() {
                        f.on_gpu_result(true, lost);
                    }
                }
                // Keep the previous variants: replanning never kills a job.
            }
        }
    }
}

/// Trips the queue onto CPU-only shapes after the GPU circuit breaker
/// opens: every queued GPU job swaps to its already-measured fallback
/// variant when it has one (no re-compile — a trip racing a
/// calibration replan must not price the same job twice) or re-compiles
/// segment-granularly to `CpuParallel` otherwise.
fn degrade_queue(
    queue: &mut [Queued],
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    cal: Option<&Calibration>,
    errors: &mut Vec<ServeError>,
    mut cache: Option<&mut PlanCache>,
) {
    for q in queue.iter_mut() {
        if !uses_gpu(&q.primary) {
            continue;
        }
        // A resumed job keeps its measured suffix shape even with the
        // breaker open: recompiling a from-scratch CPU-only variant would
        // forfeit its saved levels, and its measured demands replay
        // deterministically through the calendars either way.
        if q.checkpoint.is_some() {
            continue;
        }
        let retries = q.primary.retries;
        if let Some(mut f) = q.fallback.take() {
            f.degraded = true;
            f.retries += retries;
            q.primary = f;
            continue;
        }
        let Ok(params) = pricing_params(job_cfg, serve, cal) else {
            continue;
        };
        let base_rec = q.workload.recurrence();
        let rec = match cal {
            Some(c) => c.scale_recurrence(&base_rec),
            None => base_rec,
        };
        let n = q.workload.input_len() as u64;
        let Ok(levels) = q.workload.exec_levels() else {
            continue;
        };
        match build_variant(
            q.workload.as_mut(),
            &ScheduleSpec::CpuParallel,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
            None,
            serve.metrics.as_ref(),
            cache.as_deref_mut(),
        ) {
            Ok(mut v) => {
                v.degraded = true;
                v.retries = retries;
                q.primary = v;
            }
            Err(e) => {
                // The CPU-only shape failing to build is not a device
                // problem; record it and leave the job as-is — its
                // measured demands still replay deterministically.
                errors.push(e.into_serve(q.id));
            }
        }
    }
}

/// Earliest `(start, end)` the variant's segment chain can run at or
/// after `t0` against the current calendars, without reserving anything.
fn probe(arb: &DeviceArbiter, t0: f64, v: &Variant) -> (f64, f64) {
    let mut t = t0;
    let mut start = f64::INFINITY;
    for d in &v.demands {
        if d.len() <= EPS {
            continue;
        }
        let s = match d.kind {
            SegKind::Cpu { cores } => arb.cpu_slot(t, d.cpu, cores),
            SegKind::Gpu => arb.gpu_slot(t, d.gpu),
            SegKind::Split { cores } => arb.pair_slot(t, d.cpu, cores, d.gpu),
        };
        if start.is_infinite() {
            start = s;
        }
        t = s + d.len();
    }
    if start.is_infinite() {
        start = t0;
    }
    (start, t)
}

/// One committed calendar entry, kept so a cancelled job's slots can be
/// released back to the arbiter.
#[derive(Debug, Clone, Copy)]
enum Resv {
    Gpu(f64, f64),
    Cpu(f64, f64, usize),
}

/// Reserves the variant's segment chain (same placement logic as
/// [`probe`] — a job's segments occupy disjoint windows, so committing
/// earlier segments never moves later ones) and schedules a dispatch
/// retry at every reservation release. Returns the window, every
/// calendar entry made (for release on cancellation), and the granted
/// `(start, end)` window of each demand — aligned index for index with
/// `v.demands`, zero-length demands getting the empty window `(t, t)` —
/// so dispatch can hang segment spans on the real reservations.
fn commit(
    arb: &mut DeviceArbiter,
    heap: &mut EventHeap,
    tick_seq: &mut u64,
    t0: f64,
    v: &Variant,
) -> (f64, f64, Vec<Resv>, Vec<(f64, f64)>) {
    let mut t = t0;
    let mut start = f64::INFINITY;
    let mut resvs = Vec::new();
    let mut windows = Vec::with_capacity(v.demands.len());
    for d in &v.demands {
        if d.len() <= EPS {
            windows.push((t, t));
            continue;
        }
        let (s, e) = match d.kind {
            SegKind::Cpu { cores } => {
                let (s, e) = arb.reserve_cpu(t, d.cpu, cores);
                resvs.push(Resv::Cpu(s, e, cores));
                (s, e)
            }
            SegKind::Gpu => {
                let (s, e) = arb.reserve_gpu(t, d.gpu);
                resvs.push(Resv::Gpu(s, e));
                (s, e)
            }
            SegKind::Split { cores } => {
                let (s, e) = arb.reserve_pair(t, d.cpu, cores, d.gpu);
                if d.gpu > EPS {
                    resvs.push(Resv::Gpu(s, s + d.gpu));
                }
                if d.cpu > EPS {
                    resvs.push(Resv::Cpu(s, s + d.cpu, cores));
                }
                (s, e)
            }
        };
        if start.is_infinite() {
            start = s;
        }
        windows.push((s, e));
        *tick_seq += 1;
        heap.push(Reverse((Time(e), *tick_seq, Ev::Tick)));
        t = e;
    }
    if start.is_infinite() {
        start = t0;
    }
    (start, t, resvs, windows)
}

/// Releases every calendar entry of a cancelled job back to the arbiter,
/// so later arrivals can reuse its slots.
fn release_all(arb: &mut DeviceArbiter, resvs: &[Resv]) {
    for r in resvs {
        match *r {
            Resv::Gpu(s, e) => {
                arb.release_gpu(s, e);
            }
            Resv::Cpu(s, e, k) => {
                arb.release_cpu(s, e, k);
            }
        }
    }
}

/// The admitted checkpoint boundaries of one committed dispatch:
/// `(window_end, resume_level)` per granted plan segment except the last
/// (whose boundary is the job's completion, not a checkpoint), filtered
/// by the policy, ascending in time. Levels are absolute executor levels
/// even for a resume suffix.
fn checkpoint_boundaries(
    policy: CheckpointPolicy,
    plan: &Plan,
    windows: &[(f64, f64)],
) -> Vec<(f64, u32)> {
    if policy == CheckpointPolicy::Off {
        return Vec::new();
    }
    let last = plan.segments.len().saturating_sub(1);
    plan.segments
        .iter()
        .zip(windows.iter())
        .take(last)
        .filter_map(|(seg, &(_, we))| {
            let level = seg.last_level + 1;
            policy.admits(level).then_some((we, level))
        })
        .collect()
}

/// Whether a variant's shape can join a cross-job batch: it must drive
/// the device through at least one exclusive GPU band and carry no
/// concurrent split (a split's CPU half is already pinned to its own
/// GPU half — merging the device side would break the pairing).
fn batchable(v: &Variant) -> bool {
    let mut has_gpu = false;
    for d in &v.demands {
        match d.kind {
            SegKind::Split { .. } => return false,
            SegKind::Gpu => has_gpu |= d.gpu > EPS,
            SegKind::Cpu { .. } => {}
        }
    }
    has_gpu
}

/// Whether `b` may share a batched launch with `a`: same algorithm kind,
/// same calibration generation, and a structurally identical compiled
/// plan (same bands, placements and transfer edges — the definition of
/// "same-shaped kernels").
fn same_batch_shape(a: &Queued, b: &Queued) -> bool {
    batchable(&b.primary)
        && a.workload.kind() == b.workload.kind()
        && a.generation == b.generation
        && *a.primary.plan == *b.primary.plan
}

/// The committed (or probed) reservation layout of one batch.
struct BatchTimeline {
    /// Per-member granted windows, aligned index for index with each
    /// member's `demands` (zero-length demands get `(t, t)`); members in
    /// the order they were passed to [`lay_batch`].
    windows: Vec<Vec<(f64, f64)>>,
    /// The merged GPU windows, one per batched GPU segment, plan order.
    gpu_windows: Vec<(f64, f64)>,
    /// Total device time amortized away versus solo commits.
    saved: f64,
}

/// First granted (non-empty) window start, `fallback` if none.
fn window_start(windows: &[(f64, f64)], fallback: f64) -> f64 {
    windows
        .iter()
        .find(|w| w.1 - w.0 > EPS)
        .map_or(fallback, |w| w.0)
}

/// Last granted (non-empty) window end, `fallback` if none.
fn window_end(windows: &[(f64, f64)], fallback: f64) -> f64 {
    windows
        .iter()
        .rev()
        .find(|w| w.1 - w.0 > EPS)
        .map_or(fallback, |w| w.1)
}

/// Lays one batch's reservations on `arb` starting at `t0`: every GPU
/// segment becomes **one** merged lease held by all members jointly
/// (duration per [`batched_segment_time`] — one copy of the shared fixed
/// cost, everyone's payload), while CPU bands reserve per member from
/// the shared core pool. Segments are barriers: the batch moves to
/// segment `i + 1` only when every member finished segment `i` — the
/// price of sharing a launch.
///
/// With `heap` present this is the real commit (a dispatch-retry tick is
/// scheduled at every reservation release); probing the same layout on a
/// *clone* of the arbiter with `heap = None` answers "what would this
/// batch look like" without committing anything.
fn lay_batch(
    arb: &mut DeviceArbiter,
    mut heap: Option<(&mut EventHeap, &mut u64)>,
    t0: f64,
    members: &[&Variant],
) -> BatchTimeline {
    let m = members.len();
    let segs = members[0].demands.len();
    let mut windows = vec![Vec::with_capacity(segs); m];
    let mut gpu_windows = Vec::new();
    let mut saved = 0.0;
    let mut t = t0;
    for si in 0..segs {
        match members[0].demands[si].kind {
            SegKind::Gpu => {
                let durs: Vec<f64> = members.iter().map(|v| v.demands[si].gpu).collect();
                let shared = members
                    .iter()
                    .map(|v| v.fixed.get(si).copied().unwrap_or(0.0))
                    .fold(f64::INFINITY, f64::min);
                let merged = batched_segment_time(&durs, shared);
                if merged.time <= EPS {
                    for w in windows.iter_mut() {
                        w.push((t, t));
                    }
                    continue;
                }
                let (s, e) = arb.reserve_gpu_batch(t, merged.time, m);
                if let Some((heap, seq)) = heap.as_mut() {
                    **seq += 1;
                    heap.push(Reverse((Time(e), **seq, Ev::Tick)));
                }
                for w in windows.iter_mut() {
                    w.push((s, e));
                }
                gpu_windows.push((s, e));
                saved += merged.saved;
                t = e;
            }
            // Split never reaches here (`batchable` rejects it); the arm
            // keeps the match total and treats it like a CPU band.
            SegKind::Cpu { .. } | SegKind::Split { .. } => {
                let mut barrier = t;
                for (mi, v) in members.iter().enumerate() {
                    let d = &v.demands[si];
                    if d.len() <= EPS {
                        windows[mi].push((t, t));
                        continue;
                    }
                    let cores = match d.kind {
                        SegKind::Cpu { cores } | SegKind::Split { cores } => cores,
                        SegKind::Gpu => 1,
                    };
                    let (s, e) = arb.reserve_cpu(t, d.cpu, cores);
                    if let Some((heap, seq)) = heap.as_mut() {
                        **seq += 1;
                        heap.push(Reverse((Time(e), **seq, Ev::Tick)));
                    }
                    windows[mi].push((s, e));
                    barrier = barrier.max(e);
                }
                t = barrier;
            }
        }
    }
    BatchTimeline {
        windows,
        gpu_windows,
        saved,
    }
}

/// Tries to coalesce the dispatch-order winner `leader` with other
/// same-shaped queued jobs into one batched launch. Returns whether a
/// batch committed (the members are gone from the queue); `false` means
/// the caller dispatches the leader solo, exactly as without batching.
#[allow(clippy::too_many_arguments)]
fn try_batch(
    now: f64,
    serve: &ServeConfig,
    arb: &mut DeviceArbiter,
    queue: &mut Vec<Queued>,
    records: &mut Vec<JobRecord>,
    runs: &mut Vec<JobRun>,
    heap: &mut EventHeap,
    tick_seq: &mut u64,
    pending: &mut Option<&mut Vec<PendingObs>>,
    order: &[usize],
    leader: usize,
    bound: usize,
    spans: &mut SpanSet,
    batches: &mut Vec<BatchRecord>,
    running: &mut Vec<RunningJob>,
) -> bool {
    if !batchable(&queue[leader].primary) {
        return false;
    }
    // Companions in dispatch order — the policy's own ranking decides
    // who shares the launch, never an id or arrival re-sort.
    let mut member_qis: Vec<usize> = vec![leader];
    for &qi in order {
        if member_qis.len() >= bound {
            break;
        }
        if qi != leader && same_batch_shape(&queue[leader], &queue[qi]) {
            member_qis.push(qi);
        }
    }
    // Fairness guard: lay the batch on a scratch copy of the calendars
    // first. A member the merged windows would push past its deadline is
    // dropped (re-probing, since dropping changes the merge); a batch
    // that cannot start at this event, or that would make the *leader*
    // miss a deadline it meets solo, is abandoned entirely.
    loop {
        if member_qis.len() < 2 {
            return false;
        }
        let members: Vec<&Variant> = member_qis.iter().map(|&qi| &queue[qi].primary).collect();
        let mut scratch = arb.clone();
        let lay = lay_batch(&mut scratch, None, now, &members);
        let batch_start = lay
            .windows
            .iter()
            .map(|w| window_start(w, now))
            .fold(f64::INFINITY, f64::min);
        if batch_start > now + EPS {
            return false;
        }
        let mut dropped = None;
        for (mi, &qi) in member_qis.iter().enumerate() {
            let q = &queue[qi];
            let Some(dl) = q.deadline else { continue };
            if window_end(&lay.windows[mi], now) + q.primary.overhang() > dl + EPS {
                if qi == leader {
                    return false;
                }
                dropped = Some(mi);
                break;
            }
        }
        match dropped {
            Some(mi) => {
                member_qis.remove(mi);
            }
            None => break,
        }
    }
    // Commit the real calendars and pull the members off the queue,
    // keeping the dispatch-order pairing of member and windows.
    let members: Vec<&Variant> = member_qis.iter().map(|&qi| &queue[qi].primary).collect();
    let size = members.len();
    let lay = lay_batch(arb, Some((heap, tick_seq)), now, &members);
    let mut order_ix: Vec<usize> = (0..member_qis.len()).collect();
    order_ix.sort_by(|&a, &b| member_qis[b].cmp(&member_qis[a]));
    let mut taken: Vec<Option<Queued>> = (0..size).map(|_| None).collect();
    for ix in order_ix {
        taken[ix] = Some(queue.remove(member_qis[ix]));
    }
    // One launch span, attributed to every member: the merged device
    // window on the GPU track, parenting nothing — each member's own GPU
    // segment spans share its window, which is the attribution.
    let bs = lay
        .gpu_windows
        .iter()
        .map(|w| w.0)
        .fold(f64::INFINITY, f64::min)
        .min(now);
    let be = lay.gpu_windows.iter().map(|w| w.1).fold(now, f64::max);
    spans.push(
        Track::Gpu,
        bs,
        be,
        SpanKind::Batch {
            size: size as u32,
            saved: lay.saved,
        },
        None,
    );
    if let Some(m) = &serve.metrics {
        m.inc("batch.formed", 1);
        m.observe("batch.size", size as f64);
        m.observe("batch.amortized_savings", lay.saved);
    }
    let mut member_ids = Vec::with_capacity(size);
    for (mi, q) in taken.into_iter().enumerate() {
        let Queued {
            id,
            name,
            arrival,
            deadline,
            spec,
            workload,
            primary: v,
            fallback: _,
            skips,
            generation,
            checkpoint,
        } = q.expect("every batch member was taken exactly once");
        let windows = &lay.windows[mi];
        let start = window_start(windows, now);
        let end = window_end(windows, now);
        member_ids.push(id);
        for other in queue.iter_mut() {
            if other.id < id {
                other.skips += 1;
            }
        }
        if let Some(pending) = pending.as_deref_mut() {
            let drift = if v.cost > 0.0 {
                (v.report.virtual_time - v.cost) / v.cost
            } else {
                0.0
            };
            pending.push(PendingObs {
                end,
                job: id,
                obs: v.obs,
                drift,
            });
        }
        if let Some(m) = &serve.metrics {
            m.inc("serve.completed", 1);
            m.observe("serve.admission_wait", start - arrival);
            m.observe("serve.latency", end - arrival);
            m.observe("serve.service", v.report.virtual_time);
        }
        push_job_spans(spans, id, &name, start, end, &v, windows);
        records.push(JobRecord {
            id,
            name: name.clone(),
            outcome: JobOutcome::Completed,
            arrival,
            start,
            end,
            predicted: v.cost,
            service: v.report.virtual_time,
            fallback: false,
            retries: v.retries,
            degraded: v.degraded,
            calibration_generation: generation,
        });
        let boundaries = checkpoint_boundaries(serve.checkpoint, &v.plan, windows);
        let words = workload.input_len() as u64;
        runs.push(JobRun {
            id,
            name: name.clone(),
            fallback: false,
            report: v.report,
        });
        // A batch member's share of the merged lease is not separable, so
        // a crash does not reclaim its reservations (`resvs` stays empty).
        running.push(RunningJob {
            id,
            name,
            spec,
            arrival,
            deadline,
            skips,
            workload,
            end,
            boundaries,
            next_boundary: 0,
            prior_ckpt: checkpoint,
            resvs: Vec::new(),
            words,
        });
    }
    batches.push(BatchRecord {
        at: now,
        members: member_ids,
        windows: lay.gpu_windows,
        saved: lay.saved,
    });
    true
}

#[allow(clippy::too_many_arguments)]
fn dispatch_all(
    now: f64,
    serve: &ServeConfig,
    arb: &mut DeviceArbiter,
    queue: &mut Vec<Queued>,
    records: &mut Vec<JobRecord>,
    runs: &mut Vec<JobRun>,
    errors: &mut Vec<ServeError>,
    heap: &mut EventHeap,
    tick_seq: &mut u64,
    mut pending: Option<&mut Vec<PendingObs>>,
    strict_deadlines: bool,
    spans: &mut SpanSet,
    batches: &mut Vec<BatchRecord>,
    running: &mut Vec<RunningJob>,
) {
    loop {
        if queue.is_empty() {
            return;
        }
        let ranks: Vec<Rank> = queue
            .iter()
            .map(|q| Rank {
                seq: q.id,
                cost: q.primary.cost,
                skips: q.skips,
            })
            .collect();
        let (order, rigid) = dispatch_order(&serve.policy, &ranks);
        let mut chosen: Option<(usize, bool)> = None;
        let mut cancels: Vec<usize> = Vec::new();
        for (pos, &qi) in order.iter().enumerate() {
            let q = &queue[qi];
            let (ps, pe) = probe(arb, now, &q.primary);
            let (mut s, mut e, mut fb) = (ps, pe, false);
            if ps > now + EPS {
                // Sampled at every dispatch round: how far away the
                // earliest feasible start is for a job the calendars
                // cannot place right now (GPU jobs: lease contention).
                if let Some(m) = &serve.metrics {
                    if uses_gpu(&q.primary) {
                        m.observe("arbiter.gpu_lease_wait", ps - now);
                    }
                }
                // Device lease contended: take the CPU-only shape if it
                // starts now and finishes no later.
                if let Some(f) = &q.fallback {
                    let (fs, fe) = probe(arb, now, f);
                    if fs <= now + EPS && fe <= pe + EPS {
                        (s, e, fb) = (fs, fe, true);
                    }
                }
            }
            if let Some(dl) = q.deadline {
                // Projections only grow as reservations accumulate, so a
                // completion past the deadline is already unmeetable.
                if e > dl + EPS {
                    cancels.push(qi);
                    continue;
                }
            }
            if s <= now + EPS {
                chosen = Some((qi, fb));
                break;
            }
            if pos < rigid {
                // No backfilling past a rigid (FIFO or overdue) entry.
                break;
            }
        }
        if !cancels.is_empty() {
            cancels.sort_unstable();
            for qi in cancels.into_iter().rev() {
                let q = queue.remove(qi);
                if let Some(m) = &serve.metrics {
                    m.inc("serve.cancelled", 1);
                }
                errors.push(ServeError::Cancelled {
                    job: q.id,
                    deadline: q.deadline.unwrap_or(f64::NAN),
                });
                records.push(JobRecord {
                    id: q.id,
                    name: q.name,
                    outcome: JobOutcome::Cancelled,
                    arrival: q.arrival,
                    start: now,
                    end: now,
                    predicted: q.primary.cost,
                    service: 0.0,
                    fallback: false,
                    retries: q.primary.retries,
                    degraded: q.primary.degraded,
                    calibration_generation: q.generation,
                });
            }
            continue;
        }
        let Some((qi, fb)) = chosen else {
            return;
        };
        // Cross-job coalescing: the policy's winner may share its launch
        // with other same-shaped queued jobs. Behind the `bound()` gate,
        // [`BatchPolicy::Off`] never reaches this call.
        if !fb {
            if let Some(bound) = serve.batch.bound() {
                if try_batch(
                    now,
                    serve,
                    arb,
                    queue,
                    records,
                    runs,
                    heap,
                    tick_seq,
                    &mut pending,
                    &order,
                    qi,
                    bound,
                    spans,
                    batches,
                    running,
                ) {
                    continue;
                }
            }
        }
        let Queued {
            id,
            name,
            arrival,
            deadline,
            spec,
            workload,
            primary,
            fallback,
            skips,
            generation,
            checkpoint,
        } = queue.remove(qi);
        // A chosen fallback that vanished (it cannot, but never panic the
        // scheduler over it) degrades gracefully to the primary shape.
        let (v, fb) = match (fb, fallback) {
            (true, Some(f)) => (f, true),
            (true, None) => (primary, false),
            (false, p_or_f) => {
                drop(p_or_f);
                (primary, false)
            }
        };
        let (start, end, resvs, windows) = commit(arb, heap, tick_seq, now, &v);
        // Deadline-aware straggler cancellation (fault mode only): the
        // calendars only hold per-segment device demands, so a job whose
        // solo run carried overhang (retry backoff, straggler slowdown
        // waits) really finishes later than its last reservation. If that
        // true completion misses the deadline, cancel now and hand the
        // slots back.
        if let Some(dl) = deadline.filter(|_| strict_deadlines) {
            if end + v.overhang() > dl + EPS {
                release_all(arb, &resvs);
                if let Some(m) = &serve.metrics {
                    m.inc("serve.cancelled", 1);
                }
                errors.push(ServeError::Cancelled {
                    job: id,
                    deadline: dl,
                });
                records.push(JobRecord {
                    id,
                    name,
                    outcome: JobOutcome::Cancelled,
                    arrival,
                    start: now,
                    end: now,
                    predicted: v.cost,
                    service: 0.0,
                    fallback: fb,
                    retries: v.retries,
                    degraded: v.degraded,
                    calibration_generation: generation,
                });
                continue;
            }
        }
        for other in queue.iter_mut() {
            if other.id < id {
                other.skips += 1;
            }
        }
        if let Some(pending) = pending.as_deref_mut() {
            let drift = if v.cost > 0.0 {
                (v.report.virtual_time - v.cost) / v.cost
            } else {
                0.0
            };
            pending.push(PendingObs {
                end,
                job: id,
                obs: v.obs,
                drift,
            });
        }
        if let Some(m) = &serve.metrics {
            m.inc("serve.completed", 1);
            m.observe("serve.admission_wait", start - arrival);
            m.observe("serve.latency", end - arrival);
            m.observe("serve.service", v.report.virtual_time);
        }
        push_job_spans(spans, id, &name, start, end, &v, &windows);
        records.push(JobRecord {
            id,
            name: name.clone(),
            outcome: JobOutcome::Completed,
            arrival,
            start,
            end,
            predicted: v.cost,
            service: v.report.virtual_time,
            fallback: fb,
            retries: v.retries,
            degraded: v.degraded,
            calibration_generation: generation,
        });
        let boundaries = checkpoint_boundaries(serve.checkpoint, &v.plan, &windows);
        let words = workload.input_len() as u64;
        runs.push(JobRun {
            id,
            name: name.clone(),
            fallback: fb,
            report: v.report,
        });
        running.push(RunningJob {
            id,
            name,
            spec,
            arrival,
            deadline,
            skips,
            workload,
            end,
            boundaries,
            next_boundary: 0,
            prior_ckpt: checkpoint,
            resvs,
            words,
        });
    }
}

/// Records the causal span tree of one dispatched job: the job span over
/// its committed window, a segment span per granted reservation window,
/// the solo run's level rows laid *proportionally* inside their segment's
/// window (the calendars replay measured demands, not per-level
/// sub-schedules, so the level layout is causal but approximate), and a
/// zero-width retry marker when recovery retried.
fn push_job_spans(
    spans: &mut SpanSet,
    id: u64,
    name: &str,
    start: f64,
    end: f64,
    v: &Variant,
    windows: &[(f64, f64)],
) {
    let job_span = spans.push(
        Track::Cpu,
        start,
        end,
        SpanKind::Job {
            job: id,
            name: name.to_string(),
        },
        None,
    );
    if v.retries > 0 {
        spans.push(
            Track::Cpu,
            start,
            start,
            SpanKind::Retry { attempt: v.retries },
            Some(job_span),
        );
    }
    let last = v.demands.len().saturating_sub(1);
    for (i, (d, &(ws, we))) in v.demands.iter().zip(windows.iter()).enumerate() {
        if d.len() <= EPS {
            continue;
        }
        let (track, placement) = match d.kind {
            SegKind::Cpu { .. } => (Track::Cpu, "cpu"),
            SegKind::Gpu => (Track::Gpu, "gpu"),
            SegKind::Split { .. } => (Track::Gpu, "split"),
        };
        let seg_span = spans.push(
            track,
            ws,
            we,
            SpanKind::Segment {
                index: i as u32,
                placement: placement.to_string(),
            },
            Some(job_span),
        );
        let rows: Vec<_> = v
            .report
            .levels
            .iter()
            .filter(|r| r.segment.map(|s| s as usize).unwrap_or(0).min(last) == i)
            .collect();
        let total: f64 = rows.iter().map(|r| r.time.max(0.0)).sum();
        if total <= 0.0 {
            continue;
        }
        let mut t = ws;
        for row in rows {
            let dur = (we - ws) * row.time.max(0.0) / total;
            spans.push(
                track,
                t,
                t + dur,
                SpanKind::Level { level: row.level },
                Some(seg_span),
            );
            t += dur;
        }
    }
}
