//! The simulated-time multi-job scheduler.
//!
//! [`serve_sim`] runs a fleet of D&C jobs over **one** shared simulated
//! machine. Each job is compiled to a [`Plan`] at admission, priced with
//! [`plan_cost`], and solo-executed on a private virtual clock to measure
//! its exact per-segment device demands; dispatch then replays those
//! demands through the [`DeviceArbiter`]'s reservation calendars in fleet
//! virtual time. The GPU is an exclusive lease, so GPU segments of
//! different jobs serialize while their CPU segments overlap; the CPU pool
//! partitions by core count (see [`ServeConfig::cores_per_job`]).
//!
//! Scheduling is event-driven and fully deterministic: events are job
//! arrivals and reservation releases, and at each event the dispatcher
//! offers resources to queued jobs in [`Policy`] order. Backpressure is a
//! bounded queue ([`ServeError::QueueFull`]); deadlines cancel jobs whose
//! projected completion falls past them ([`ServeError::Cancelled`] — the
//! projection only ever tightens as reservations accumulate, so an early
//! cancel is never wrong). When the GPU lease is contended, a job with a
//! compiled CPU-only fallback takes it instead of waiting, if that
//! finishes sooner.
//!
//! # Closed-loop calibration
//!
//! With [`ServeConfig::calibration`] set, the scheduler closes the loop
//! between prediction and observation: each completed job's measured
//! CPU/GPU/bus times are folded into a [`Calibrator`] **at the job's
//! completion time** (evidence never arrives early), and when a completed
//! job's relative drift exceeds the configured threshold, every
//! still-queued job is re-priced and re-compiled under the corrected
//! parameters — admission cost, `ShortestCost` ordering, and the plan's
//! crossover levels all improve as evidence accumulates. Pricing can start
//! from deliberately wrong numbers via [`ServeConfig::assumed`].
//! Everything stays deterministic: observations drain in completion order
//! at event boundaries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hpu_core::exec::RunReport;
use hpu_core::CoreError;
use hpu_machine::{MachineConfig, SimHpu, SimMachineParams};
use hpu_model::{
    compile, plan_cost, Calibration, CalibrationError, Calibrator, CalibratorConfig, LevelProfile,
    MachineParams, ModelError, Observation, Placement, Plan, PlanCost, Recurrence, ScheduleSpec,
};
use hpu_obs::{JobOutcome, JobRecord, ServeReport};

use crate::arbiter::{DeviceArbiter, EPS};
use crate::error::ServeError;
use crate::job::Workload;
use crate::queue::{dispatch_order, Policy, Rank};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum number of jobs waiting in the admission queue; arrivals
    /// beyond it are rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Dispatch policy.
    pub policy: Policy,
    /// Whether a GPU-using job may fall back to its CPU-only plan when
    /// the device lease is contended and the fallback finishes sooner.
    pub cpu_fallback: bool,
    /// Compile each job for this many cores instead of the whole CPU,
    /// letting several jobs' CPU segments run side by side in the pool
    /// (clamped to the machine's core count).
    pub cores_per_job: Option<usize>,
    /// Machine parameters to price and compile with, when they should
    /// differ from the served machine's own
    /// ([`MachineParams::from_config`]). This is the mis-specification
    /// knob for calibration experiments: the scheduler *believes* these
    /// numbers until the calibration loop corrects them. `p` always
    /// follows the served machine (and [`ServeConfig::cores_per_job`]).
    pub assumed: Option<MachineParams>,
    /// Closed-loop calibration (see the module docs). `None` — the
    /// default — keeps the open-loop behavior bit for bit.
    pub calibration: Option<CalibratorConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            policy: Policy::default(),
            cpu_fallback: true,
            cores_per_job: None,
            assumed: None,
            calibration: None,
        }
    }
}

/// One job submission.
pub struct JobRequest {
    /// Human-readable label, carried into the records.
    pub name: String,
    /// The schedule to compile the job's plan from.
    pub spec: ScheduleSpec,
    /// Submission time (fleet virtual time).
    pub arrival: f64,
    /// Latest acceptable completion time, if any.
    pub deadline: Option<f64>,
    /// The work itself.
    pub workload: Box<dyn Workload>,
}

impl JobRequest {
    /// A deadline-free job submission.
    pub fn new(
        name: impl Into<String>,
        spec: ScheduleSpec,
        arrival: f64,
        workload: Box<dyn Workload>,
    ) -> Self {
        JobRequest {
            name: name.into(),
            spec,
            arrival,
            deadline: None,
            workload,
        }
    }

    /// Attaches a completion deadline (fleet virtual time).
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The full execution report of one completed job.
pub struct JobRun {
    /// Scheduler-assigned job id (submission order).
    pub id: u64,
    /// The job's label.
    pub name: String,
    /// Whether the CPU-only fallback plan ran instead of the primary.
    pub fallback: bool,
    /// The per-job run report (virtual time, per-level metrics, drift).
    pub report: RunReport,
}

/// Everything a serving run produces.
pub struct ServeOutput {
    /// Fleet-level metrics over every submitted job.
    pub report: ServeReport,
    /// Per-job [`RunReport`]s of the jobs that completed.
    pub runs: Vec<JobRun>,
    /// Typed rejection/cancellation/failure errors, in occurrence order.
    pub errors: Vec<ServeError>,
    /// Every GPU lease granted, ascending by start.
    pub gpu_leases: Vec<(f64, f64)>,
    /// Every CPU reservation granted `(start, end, cores)`.
    pub cpu_reservations: Vec<(f64, f64, usize)>,
    /// Drift-triggered replans performed (0 without calibration).
    pub replans: u64,
    /// Final calibration state, when the loop was enabled.
    pub calibration: Option<Calibration>,
}

/// Where one plan segment runs, from the arbiter's point of view.
#[derive(Debug, Clone, Copy)]
enum SegKind {
    Cpu { cores: usize },
    Gpu,
    Split { cores: usize },
}

/// Measured device demand of one plan segment.
#[derive(Debug, Clone, Copy)]
struct SegDemand {
    kind: SegKind,
    cpu: f64,
    gpu: f64,
}

impl SegDemand {
    fn len(&self) -> f64 {
        match self.kind {
            SegKind::Cpu { .. } => self.cpu,
            SegKind::Gpu => self.gpu,
            SegKind::Split { .. } => self.cpu.max(self.gpu),
        }
    }
}

/// One executable shape of a job: a plan's measured demands plus its
/// predicted cost, the solo run's report, and the predicted-vs-observed
/// per-unit evidence for the calibration loop.
struct Variant {
    cost: f64,
    demands: Vec<SegDemand>,
    report: RunReport,
    obs: Observation,
}

fn uses_gpu(v: &Variant) -> bool {
    v.demands
        .iter()
        .any(|d| matches!(d.kind, SegKind::Gpu | SegKind::Split { .. }))
}

struct Queued {
    id: u64,
    name: String,
    arrival: f64,
    deadline: Option<f64>,
    spec: ScheduleSpec,
    workload: Box<dyn Workload>,
    primary: Variant,
    fallback: Option<Variant>,
    skips: usize,
    /// Calibration generation the job was last priced under.
    generation: u64,
}

/// Evidence of a dispatched job, released at its completion time.
struct PendingObs {
    end: f64,
    job: u64,
    obs: Observation,
    drift: f64,
}

/// Total order on event times (f64 `total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrive(usize),
    Tick,
}

type EventHeap = BinaryHeap<Reverse<(Time, u64, Ev)>>;

/// Serves `jobs` over one shared simulated machine `cfg` under the
/// scheduler configuration `serve`. Deterministic: equal inputs give
/// equal outputs, event for event.
pub fn serve_sim(cfg: &MachineConfig, serve: &ServeConfig, jobs: Vec<JobRequest>) -> ServeOutput {
    let mut arb = DeviceArbiter::new(cfg.cpu.cores);
    let mut queue: Vec<Queued> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut runs: Vec<JobRun> = Vec::new();
    let mut errors: Vec<ServeError> = Vec::new();

    let mut job_cfg = cfg.clone();
    if let Some(k) = serve.cores_per_job {
        job_cfg.cpu.cores = k.clamp(1, cfg.cpu.cores);
    }
    let mut calibrator = match &serve.calibration {
        Some(c) => match Calibrator::new(c.clone()) {
            Ok(cal) => Some(cal),
            Err(e) => {
                errors.push(ServeError::Calibration {
                    job: None,
                    source: e,
                });
                None
            }
        },
        None => None,
    };
    let mut pending: Vec<PendingObs> = Vec::new();
    let mut replans: u64 = 0;

    let mut heap: EventHeap = BinaryHeap::new();
    let mut tick_seq = jobs.len() as u64;
    let mut slots: Vec<Option<JobRequest>> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.into_iter().enumerate() {
        heap.push(Reverse((
            Time(job.arrival.max(0.0)),
            i as u64,
            Ev::Arrive(i),
        )));
        slots.push(Some(job));
    }

    while let Some(Reverse((t, _, ev))) = heap.pop() {
        let now = t.0;
        // Fold the evidence of every job that has completed by now; a
        // large enough drift triggers a re-price of the queue.
        if let Some(cal) = calibrator.as_mut() {
            let mut ready: Vec<PendingObs> = Vec::new();
            pending.retain_mut(|p| {
                if p.end <= now + EPS {
                    ready.push(PendingObs {
                        end: p.end,
                        job: p.job,
                        obs: p.obs,
                        drift: p.drift,
                    });
                    false
                } else {
                    true
                }
            });
            ready.sort_by(|a, b| a.end.total_cmp(&b.end).then(a.job.cmp(&b.job)));
            let mut trigger = false;
            for p in &ready {
                if let Err(e) = cal.observe(&p.obs) {
                    errors.push(ServeError::Calibration {
                        job: Some(p.job),
                        source: e,
                    });
                }
                trigger |= cal.should_replan(p.drift);
            }
            if trigger {
                replans += 1;
                replan(
                    &mut queue,
                    &job_cfg,
                    serve,
                    cal.calibration(),
                    replans,
                    &mut errors,
                );
            }
        }
        if let Ev::Arrive(i) = ev {
            let job = slots[i].take().expect("each arrival fires once");
            admit(
                i as u64,
                job,
                now,
                &job_cfg,
                serve,
                &mut queue,
                &mut records,
                &mut errors,
                calibrator.as_ref().map(|c| c.calibration()),
                replans,
            );
        }
        dispatch_all(
            now,
            serve,
            &mut arb,
            &mut queue,
            &mut records,
            &mut runs,
            &mut errors,
            &mut heap,
            &mut tick_seq,
            calibrator.is_some().then_some(&mut pending),
        );
    }
    debug_assert!(
        queue.is_empty(),
        "every queued job reaches a terminal state"
    );

    let report = ServeReport::new(records, arb.cpu_busy(), arb.gpu_busy());
    ServeOutput {
        report,
        runs,
        errors,
        gpu_leases: arb.gpu_leases().to_vec(),
        cpu_reservations: arb.cpu_reservations().to_vec(),
        replans,
        calibration: calibrator.map(|c| c.calibration().clone()),
    }
}

fn rejected_record(
    id: u64,
    name: &str,
    outcome: JobOutcome,
    at: f64,
    generation: u64,
) -> JobRecord {
    JobRecord {
        id,
        name: name.to_string(),
        outcome,
        arrival: at,
        start: at,
        end: at,
        predicted: 0.0,
        service: 0.0,
        fallback: false,
        calibration_generation: generation,
    }
}

/// The parameters jobs are priced and compiled with: the configured or
/// assumed machine, under the current calibration corrections. The CPU
/// core count always follows the per-job machine slice — calibration
/// corrects speeds and costs, never the structure.
fn pricing_params(
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    cal: Option<&Calibration>,
) -> Result<MachineParams, CalibrationError> {
    let mut params = serve
        .assumed
        .clone()
        .unwrap_or_else(|| MachineParams::from_config(job_cfg));
    params.p = job_cfg.cpu.cores;
    match cal {
        Some(c) => params.recalibrated(c),
        None => Ok(params),
    }
}

/// Why one pricing attempt failed (mapped onto [`ServeError`] with the
/// job id by the caller).
enum VariantError {
    Compile(ModelError),
    Run(CoreError),
}

impl VariantError {
    fn into_serve(self, job: u64) -> ServeError {
        match self {
            VariantError::Compile(source) => ServeError::Compile { job, source },
            VariantError::Run(source) => ServeError::Run { job, source },
        }
    }
}

/// Compiles `spec` under `params`, prices it, and solo-runs it on the
/// true machine to measure demands and calibration evidence.
fn build_variant(
    workload: &mut dyn Workload,
    spec: &ScheduleSpec,
    job_cfg: &MachineConfig,
    params: &MachineParams,
    rec: &Recurrence,
    n: u64,
    levels: u32,
) -> Result<Variant, VariantError> {
    let plan = compile(spec, params, rec, n, levels).map_err(VariantError::Compile)?;
    let profile = LevelProfile::new(params, rec, n);
    let cost = plan_cost(&profile, &plan).map_err(VariantError::Compile)?;
    solo(workload, job_cfg, &plan, &cost, params).map_err(VariantError::Run)
}

/// Solo-runs the job's plan on a private virtual clock and folds the
/// per-level metrics into per-segment device demands plus the
/// per-unit predicted-vs-observed evidence.
fn solo(
    workload: &mut dyn Workload,
    job_cfg: &MachineConfig,
    plan: &Plan,
    cost: &PlanCost,
    params: &MachineParams,
) -> Result<Variant, CoreError> {
    let mut hpu = SimHpu::new(job_cfg.clone());
    let report = workload.run_plan(&mut hpu, plan)?;
    let segs = plan.segments.len();
    let mut cpu = vec![0.0; segs];
    let mut gpu = vec![0.0; segs];
    for row in &report.levels {
        // `run_sim_plan` rejects empty plans before this point, so
        // `segs >= 1`; the saturating clamp keeps the index total even if
        // that invariant ever moves.
        let si = row
            .segment
            .map(|s| s as usize)
            .or_else(|| plan.segment_of(row.level).map(|(i, _)| i))
            .unwrap_or(0)
            .min(segs.saturating_sub(1));
        cpu[si] += row.cpu_time;
        // The bus is only ever driven for the device: transfers extend
        // the segment's GPU lease.
        gpu[si] += row.gpu_time + row.bus_time;
    }
    let demands = plan
        .segments
        .iter()
        .enumerate()
        .map(|(i, seg)| SegDemand {
            kind: match seg.placement {
                Placement::Cpu { cores } => SegKind::Cpu { cores },
                Placement::Gpu => SegKind::Gpu,
                Placement::Split { .. } => SegKind::Split {
                    cores: job_cfg.cpu.cores,
                },
            },
            cpu: cpu[i],
            gpu: gpu[i],
        })
        .collect();
    let predicted_bus: f64 = plan
        .segments
        .iter()
        .flat_map(|s| &s.transfers)
        .map(|t| params.transfer_time(t.words))
        .sum();
    let obs = Observation {
        predicted_cpu: cost.cpu,
        predicted_gpu: (cost.gpu - predicted_bus).max(0.0),
        predicted_bus,
        observed_cpu: report.levels.iter().map(|r| r.cpu_time).sum(),
        observed_gpu: report.levels.iter().map(|r| r.gpu_time).sum(),
        observed_bus: report.levels.iter().map(|r| r.bus_time).sum(),
    };
    Ok(Variant {
        cost: cost.total,
        demands,
        report,
        obs,
    })
}

#[allow(clippy::too_many_arguments)]
fn admit(
    id: u64,
    mut job: JobRequest,
    now: f64,
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    queue: &mut Vec<Queued>,
    records: &mut Vec<JobRecord>,
    errors: &mut Vec<ServeError>,
    cal: Option<&Calibration>,
    generation: u64,
) {
    if queue.len() >= serve.queue_capacity {
        errors.push(ServeError::QueueFull {
            job: id,
            capacity: serve.queue_capacity,
        });
        records.push(rejected_record(
            id,
            &job.name,
            JobOutcome::QueueFull,
            now,
            generation,
        ));
        return;
    }

    let params = match pricing_params(job_cfg, serve, cal) {
        Ok(p) => p,
        Err(e) => {
            errors.push(ServeError::Calibration {
                job: Some(id),
                source: e,
            });
            records.push(rejected_record(
                id,
                &job.name,
                JobOutcome::Failed,
                now,
                generation,
            ));
            return;
        }
    };
    let base_rec = job.workload.recurrence();
    let rec = match cal {
        Some(c) => c.scale_recurrence(&base_rec),
        None => base_rec,
    };
    let n = job.workload.input_len() as u64;
    let levels = match job.workload.exec_levels() {
        Ok(l) => l,
        Err(e) => {
            errors.push(ServeError::Run { job: id, source: e });
            records.push(rejected_record(
                id,
                &job.name,
                JobOutcome::Failed,
                now,
                generation,
            ));
            return;
        }
    };
    let primary = match build_variant(
        job.workload.as_mut(),
        &job.spec,
        job_cfg,
        &params,
        &rec,
        n,
        levels,
    ) {
        Ok(v) => v,
        Err(e) => {
            errors.push(e.into_serve(id));
            records.push(rejected_record(
                id,
                &job.name,
                JobOutcome::Failed,
                now,
                generation,
            ));
            return;
        }
    };
    // A GPU-using job also carries its CPU-only shape, so dispatch can
    // route around a contended device lease.
    let fallback = if serve.cpu_fallback && uses_gpu(&primary) {
        build_variant(
            job.workload.as_mut(),
            &ScheduleSpec::CpuParallel,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
        )
        .ok()
    } else {
        None
    };
    queue.push(Queued {
        id,
        name: job.name,
        arrival: now,
        deadline: job.deadline,
        spec: job.spec,
        workload: job.workload,
        primary,
        fallback,
        skips: 0,
        generation,
    });
}

/// Re-prices and re-compiles every still-queued job under the corrected
/// parameters. A job whose re-pricing fails keeps its previous variants —
/// replanning improves estimates, it must never kill a job.
fn replan(
    queue: &mut [Queued],
    job_cfg: &MachineConfig,
    serve: &ServeConfig,
    cal: &Calibration,
    generation: u64,
    errors: &mut Vec<ServeError>,
) {
    for q in queue.iter_mut() {
        let params = match pricing_params(job_cfg, serve, Some(cal)) {
            Ok(p) => p,
            Err(e) => {
                errors.push(ServeError::Calibration {
                    job: Some(q.id),
                    source: e,
                });
                continue;
            }
        };
        let rec = cal.scale_recurrence(&q.workload.recurrence());
        let n = q.workload.input_len() as u64;
        let Ok(levels) = q.workload.exec_levels() else {
            continue;
        };
        if let Ok(v) = build_variant(
            q.workload.as_mut(),
            &q.spec,
            job_cfg,
            &params,
            &rec,
            n,
            levels,
        ) {
            q.primary = v;
            q.generation = generation;
            q.fallback = if serve.cpu_fallback && uses_gpu(&q.primary) {
                build_variant(
                    q.workload.as_mut(),
                    &ScheduleSpec::CpuParallel,
                    job_cfg,
                    &params,
                    &rec,
                    n,
                    levels,
                )
                .ok()
            } else {
                None
            };
        }
    }
}

/// Earliest `(start, end)` the variant's segment chain can run at or
/// after `t0` against the current calendars, without reserving anything.
fn probe(arb: &DeviceArbiter, t0: f64, v: &Variant) -> (f64, f64) {
    let mut t = t0;
    let mut start = f64::INFINITY;
    for d in &v.demands {
        if d.len() <= EPS {
            continue;
        }
        let s = match d.kind {
            SegKind::Cpu { cores } => arb.cpu_slot(t, d.cpu, cores),
            SegKind::Gpu => arb.gpu_slot(t, d.gpu),
            SegKind::Split { cores } => arb.pair_slot(t, d.cpu, cores, d.gpu),
        };
        if start.is_infinite() {
            start = s;
        }
        t = s + d.len();
    }
    if start.is_infinite() {
        start = t0;
    }
    (start, t)
}

/// Reserves the variant's segment chain (same placement logic as
/// [`probe`] — a job's segments occupy disjoint windows, so committing
/// earlier segments never moves later ones) and schedules a dispatch
/// retry at every reservation release.
fn commit(
    arb: &mut DeviceArbiter,
    heap: &mut EventHeap,
    tick_seq: &mut u64,
    t0: f64,
    v: &Variant,
) -> (f64, f64) {
    let mut t = t0;
    let mut start = f64::INFINITY;
    for d in &v.demands {
        if d.len() <= EPS {
            continue;
        }
        let (s, e) = match d.kind {
            SegKind::Cpu { cores } => arb.reserve_cpu(t, d.cpu, cores),
            SegKind::Gpu => arb.reserve_gpu(t, d.gpu),
            SegKind::Split { cores } => arb.reserve_pair(t, d.cpu, cores, d.gpu),
        };
        if start.is_infinite() {
            start = s;
        }
        *tick_seq += 1;
        heap.push(Reverse((Time(e), *tick_seq, Ev::Tick)));
        t = e;
    }
    if start.is_infinite() {
        start = t0;
    }
    (start, t)
}

#[allow(clippy::too_many_arguments)]
fn dispatch_all(
    now: f64,
    serve: &ServeConfig,
    arb: &mut DeviceArbiter,
    queue: &mut Vec<Queued>,
    records: &mut Vec<JobRecord>,
    runs: &mut Vec<JobRun>,
    errors: &mut Vec<ServeError>,
    heap: &mut EventHeap,
    tick_seq: &mut u64,
    mut pending: Option<&mut Vec<PendingObs>>,
) {
    loop {
        if queue.is_empty() {
            return;
        }
        let ranks: Vec<Rank> = queue
            .iter()
            .map(|q| Rank {
                seq: q.id,
                cost: q.primary.cost,
                skips: q.skips,
            })
            .collect();
        let (order, rigid) = dispatch_order(&serve.policy, &ranks);
        let mut chosen: Option<(usize, bool)> = None;
        let mut cancels: Vec<usize> = Vec::new();
        for (pos, &qi) in order.iter().enumerate() {
            let q = &queue[qi];
            let (ps, pe) = probe(arb, now, &q.primary);
            let (mut s, mut e, mut fb) = (ps, pe, false);
            if ps > now + EPS {
                // Device lease contended: take the CPU-only shape if it
                // starts now and finishes no later.
                if let Some(f) = &q.fallback {
                    let (fs, fe) = probe(arb, now, f);
                    if fs <= now + EPS && fe <= pe + EPS {
                        (s, e, fb) = (fs, fe, true);
                    }
                }
            }
            if let Some(dl) = q.deadline {
                // Projections only grow as reservations accumulate, so a
                // completion past the deadline is already unmeetable.
                if e > dl + EPS {
                    cancels.push(qi);
                    continue;
                }
            }
            if s <= now + EPS {
                chosen = Some((qi, fb));
                break;
            }
            if pos < rigid {
                // No backfilling past a rigid (FIFO or overdue) entry.
                break;
            }
        }
        if !cancels.is_empty() {
            cancels.sort_unstable();
            for qi in cancels.into_iter().rev() {
                let q = queue.remove(qi);
                errors.push(ServeError::Cancelled {
                    job: q.id,
                    deadline: q.deadline.unwrap_or(f64::NAN),
                });
                records.push(JobRecord {
                    id: q.id,
                    name: q.name,
                    outcome: JobOutcome::Cancelled,
                    arrival: q.arrival,
                    start: now,
                    end: now,
                    predicted: q.primary.cost,
                    service: 0.0,
                    fallback: false,
                    calibration_generation: q.generation,
                });
            }
            continue;
        }
        let Some((qi, fb)) = chosen else {
            return;
        };
        let q = queue.remove(qi);
        let v = if fb {
            q.fallback.expect("fallback chosen implies it exists")
        } else {
            q.primary
        };
        let (start, end) = commit(arb, heap, tick_seq, now, &v);
        for other in queue.iter_mut() {
            if other.id < q.id {
                other.skips += 1;
            }
        }
        if let Some(pending) = pending.as_deref_mut() {
            let drift = if v.cost > 0.0 {
                (v.report.virtual_time - v.cost) / v.cost
            } else {
                0.0
            };
            pending.push(PendingObs {
                end,
                job: q.id,
                obs: v.obs,
                drift,
            });
        }
        records.push(JobRecord {
            id: q.id,
            name: q.name.clone(),
            outcome: JobOutcome::Completed,
            arrival: q.arrival,
            start,
            end,
            predicted: v.cost,
            service: v.report.virtual_time,
            fallback: fb,
            calibration_generation: q.generation,
        });
        runs.push(JobRun {
            id: q.id,
            name: q.name,
            fallback: fb,
            report: v.report,
        });
    }
}
