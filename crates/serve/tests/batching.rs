//! Cross-job GPU kernel batching: formation, fairness, determinism.
//!
//! The tentpole claims: same-shaped GPU segments from different queued
//! jobs coalesce into one launch at deterministic event boundaries,
//! paying one launch overhead + one λ across the batch — and batching
//! never changes behavior when `BatchPolicy::Off`, never delays a lone
//! job past its deadline, and stays bitwise deterministic.

use hpu_algos::MergeSort;
use hpu_machine::MachineConfig;
use hpu_model::ScheduleSpec;
use hpu_obs::JobOutcome;
use hpu_serve::{serve_sim, AlgoJob, BatchPolicy, JobRequest, ServeConfig, ServeOutput};

fn input(n: usize) -> Vec<u64> {
    (0..n as u64).rev().collect()
}

fn gpu_sort(name: &str, n: usize, arrival: f64) -> JobRequest {
    JobRequest::new(
        name,
        ScheduleSpec::GpuOnly,
        arrival,
        AlgoJob::boxed(MergeSort::new(), input(n)),
    )
}

fn same_shape_wave(count: usize) -> Vec<JobRequest> {
    (0..count)
        .map(|i| gpu_sort(&format!("j{i}"), 1 << 10, 0.0))
        .collect()
}

fn serve_with(batch: BatchPolicy, jobs: Vec<JobRequest>) -> ServeOutput {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        cpu_fallback: false,
        batch,
        ..Default::default()
    };
    serve_sim(&cfg, &serve, jobs)
}

/// A wave of same-shaped GPU jobs actually coalesces: the first arrival
/// dispatches solo (empty queue), the rest batch at the next boundary,
/// amortizing launch overhead + λ — fewer GPU leases, positive savings,
/// and a strictly smaller makespan than the unbatched run.
#[test]
fn same_shaped_jobs_coalesce_and_save_device_time() {
    let off = serve_with(BatchPolicy::Off, same_shape_wave(4));
    let on = serve_with(BatchPolicy::Coalesce { max_batch: 4 }, same_shape_wave(4));

    assert_eq!(off.report.completed, 4);
    assert_eq!(on.report.completed, 4);
    assert!(off.batches.is_empty(), "Off must never form batches");
    assert!(!on.batches.is_empty(), "Coalesce formed no batch");

    let batch = &on.batches[0];
    assert!(batch.members.len() >= 2, "batch of {}", batch.members.len());
    assert!(batch.saved > 0.0, "batch saved nothing: {}", batch.saved);
    assert!(!batch.windows.is_empty());
    // One merged lease per batched GPU segment: strictly fewer leases
    // than one-per-job-per-segment under Off.
    assert!(
        on.gpu_leases.len() < off.gpu_leases.len(),
        "batched leases {} !< solo leases {}",
        on.gpu_leases.len(),
        off.gpu_leases.len()
    );
    assert!(
        on.report.makespan < off.report.makespan - 1e-9,
        "batching did not lift throughput: {} vs {}",
        on.report.makespan,
        off.report.makespan
    );
}

/// `BatchPolicy::Off` and a degenerate `Coalesce {{ max_batch: 1 }}`
/// are byte-identical to each other: the bound gate is the single
/// behavioral insertion, so a bound that can never pair jobs must
/// reproduce today's schedule exactly — records, leases, spans, all.
#[test]
fn off_and_unit_bound_are_byte_identical() {
    let off = serve_with(BatchPolicy::Off, same_shape_wave(5));
    let one = serve_with(BatchPolicy::Coalesce { max_batch: 1 }, same_shape_wave(5));

    assert_eq!(off.report.jobs, one.report.jobs);
    assert_eq!(off.gpu_leases, one.gpu_leases);
    assert_eq!(off.cpu_reservations, one.cpu_reservations);
    assert_eq!(off.batches, one.batches);
    assert!(off.batches.is_empty());
    assert_eq!(
        format!("{:?}", off.spans),
        format!("{:?}", one.spans),
        "span streams diverge"
    );
    assert_eq!(off.report.makespan, one.report.makespan);
}

/// Fairness: a job whose deadline is met under Off must still be met
/// under Coalesce. The deadline guard drops companions (or abandons the
/// batch) rather than letting the merged window overrun anyone's bound.
#[test]
fn batching_never_pushes_a_deadlined_job_past_its_deadline() {
    let cfg = MachineConfig::hpu1_sim();
    let serve_off = ServeConfig {
        cpu_fallback: false,
        batch: BatchPolicy::Off,
        ..Default::default()
    };
    // Find the deadlines Off can just meet, then require both policies
    // to meet those same bounds.
    let probe = serve_sim(&cfg, &serve_off, same_shape_wave(4));
    assert_eq!(probe.report.completed, 4);
    let end_of = |id: u64| {
        probe
            .report
            .jobs
            .iter()
            .find(|r| r.id == id)
            .expect("probe record")
            .end
    };
    let deadlined = || -> Vec<JobRequest> {
        (0..4u64)
            .map(|i| gpu_sort(&format!("j{i}"), 1 << 10, 0.0).with_deadline(end_of(i) + 1.0))
            .collect()
    };
    let off = serve_sim(&cfg, &serve_off, deadlined());
    let serve_on = ServeConfig {
        batch: BatchPolicy::Coalesce { max_batch: 4 },
        ..serve_off
    };
    let on = serve_sim(&cfg, &serve_on, deadlined());
    assert_eq!(off.report.completed, 4, "Off misses its own deadlines");
    assert_eq!(
        on.report.completed,
        4,
        "batching pushed a deadlined job past its bound: {:?}",
        on.report
            .jobs
            .iter()
            .map(|r| (r.id, r.outcome))
            .collect::<Vec<_>>()
    );
    for rec in &on.report.jobs {
        assert_eq!(rec.outcome, JobOutcome::Completed, "job {}", rec.id);
    }
}

/// Determinism: two identical batched runs produce identical batch
/// records, job records and device calendars — batching decisions are
/// made at event boundaries from deterministic state only.
#[test]
fn batched_serving_is_deterministic_across_runs() {
    let mk = || {
        let mut jobs = same_shape_wave(6);
        // Mix in a second shape so grouping has something to skip.
        jobs.push(gpu_sort("big", 1 << 12, 0.0));
        serve_with(BatchPolicy::Coalesce { max_batch: 3 }, jobs)
    };
    let a = mk();
    let b = mk();
    assert!(!a.batches.is_empty());
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.report.jobs, b.report.jobs);
    assert_eq!(a.gpu_leases, b.gpu_leases);
    assert_eq!(a.cpu_reservations, b.cpu_reservations);
}

/// The bound caps batch size: `max_batch: 2` over a 5-job wave never
/// forms a batch larger than two, and every member id appears at most
/// once across all batches.
#[test]
fn max_batch_bound_is_respected_and_members_are_unique() {
    let out = serve_with(BatchPolicy::Coalesce { max_batch: 2 }, same_shape_wave(5));
    assert_eq!(out.report.completed, 5);
    assert!(!out.batches.is_empty());
    let mut seen = std::collections::BTreeSet::new();
    for b in &out.batches {
        assert!(
            b.members.len() <= 2,
            "batch of {} > bound 2",
            b.members.len()
        );
        assert!(b.members.len() >= 2, "degenerate batch committed");
        for &m in &b.members {
            assert!(seen.insert(m), "job {m} appears in two batches");
        }
    }
}

/// Batch spans land in the trace: one `SpanKind::Batch` event per
/// committed batch on the GPU track, carrying the member count.
#[test]
fn batch_spans_attribute_one_launch_to_many_jobs() {
    let out = serve_with(BatchPolicy::Coalesce { max_batch: 4 }, same_shape_wave(4));
    assert!(!out.batches.is_empty());
    let batch_spans: Vec<_> = out
        .spans
        .iter()
        .filter_map(hpu_obs::as_span)
        .filter_map(|(_, _, kind)| match kind {
            hpu_obs::SpanKind::Batch { size, saved } => Some((*size, *saved)),
            _ => None,
        })
        .collect();
    assert_eq!(
        batch_spans.len(),
        out.batches.len(),
        "one batch span per committed batch"
    );
    for ((size, saved), rec) in batch_spans.iter().zip(out.batches.iter()) {
        assert_eq!(*size as usize, rec.members.len());
        assert!((saved - rec.saved).abs() < 1e-9);
    }
}
