//! Live-metrics and causal-span observability of the serving loop.

use std::sync::Arc;

use hpu_algos::MergeSort;
use hpu_machine::MachineConfig;
use hpu_model::ScheduleSpec;
use hpu_obs::{as_span, ChromeTrace, MetricValue, MetricsRegistry, SpanKind, TraceEvent};
use hpu_serve::{serve_sim, AlgoJob, JobRequest, ServeConfig};

fn input(n: usize) -> Vec<u64> {
    (0..n as u64).rev().collect()
}

fn sort_job(name: &str, spec: ScheduleSpec, n: usize, arrival: f64) -> JobRequest {
    JobRequest::new(
        name,
        spec,
        arrival,
        AlgoJob::boxed(MergeSort::new(), input(n)),
    )
}

fn served_with_metrics() -> (Arc<MetricsRegistry>, Vec<TraceEvent>, usize) {
    let cfg = MachineConfig::hpu1_sim();
    let metrics = Arc::new(MetricsRegistry::new());
    let serve = ServeConfig {
        cpu_fallback: false,
        metrics: Some(metrics.clone()),
        ..Default::default()
    };
    let spec = ScheduleSpec::Basic { crossover: Some(6) };
    let out = serve_sim(
        &cfg,
        &serve,
        vec![
            sort_job("a", spec.clone(), 1 << 12, 0.0),
            sort_job("b", spec, 1 << 12, 0.0),
        ],
    );
    assert_eq!(out.report.completed, 2);
    (metrics, out.spans, out.report.completed)
}

/// The registry samples every layer of a served run: admission counters,
/// latency histograms, the arbiter's occupancy, plan compilation and the
/// interpreter's per-segment timings.
#[test]
fn live_metrics_cover_admission_compile_and_interpreter() {
    let (metrics, _, completed) = served_with_metrics();
    let snap = metrics.snapshot();

    let counter = |name: &str| match snap.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        other => panic!("{name}: expected a counter, got {other:?}"),
    };
    assert_eq!(counter("serve.submitted"), 2);
    assert_eq!(counter("serve.completed"), completed as u64);
    // The two jobs share one plan shape: the first admission compiles
    // (a cache miss), the duplicate is served from the plan cache.
    assert_eq!(counter("model.compiles"), 1);
    assert_eq!(counter("plan_cache.misses"), 1);
    assert!(counter("plan_cache.hits") >= 1, "duplicate admission hits");
    assert!(counter("interpret.segments") >= 2);
    assert!(counter("interpret.gpu_launches") >= 1, "GPU spec launches");

    let hist_count = |name: &str| match snap.get(name) {
        Some(MetricValue::Histogram(h)) => h.count,
        other => panic!("{name}: expected a histogram, got {other:?}"),
    };
    assert_eq!(hist_count("serve.latency"), completed as u64);
    assert_eq!(hist_count("serve.admission_wait"), completed as u64);
    assert!(hist_count("model.compile_ns") >= 1);
    assert!(
        hist_count("model.cache_lookup_ns") >= 1,
        "cache hits time the lookup"
    );
    assert!(hist_count("interpret.segment_time") >= 2);
    assert!(hist_count("interpret.kernel_time") >= 1);

    let gauge = |name: &str| match snap.get(name) {
        Some(MetricValue::Gauge(g)) => *g,
        other => panic!("{name}: expected a gauge, got {other:?}"),
    };
    assert!(gauge("arbiter.gpu_busy") > 0.0);
    assert!(gauge("arbiter.cpu_busy") > 0.0);
    assert_eq!(gauge("serve.queue_depth"), 0.0, "drained at the end");
    assert!(gauge("serve.makespan") > 0.0);
}

/// Acceptance: a served workload's spans form the job → segment → level
/// causal tree, with segment spans inside their job's window.
#[test]
fn span_tree_nests_job_segment_level() {
    let (_, spans, completed) = served_with_metrics();

    let jobs: Vec<_> = spans
        .iter()
        .filter_map(as_span)
        .filter(|(_, _, k)| matches!(k, SpanKind::Job { .. }))
        .collect();
    assert_eq!(jobs.len(), completed, "one job span per completion");

    for ev in &spans {
        let Some((id, parent, kind)) = as_span(ev) else {
            continue;
        };
        match kind {
            SpanKind::Job { .. } => assert_eq!(parent, None),
            _ => assert!(parent.is_some(), "span {id} ({kind:?}) must have a parent"),
        }
    }

    // Walk one complete chain: job -> gpu segment -> level.
    let (job_id, _, _) = jobs[0];
    let job_ev = spans
        .iter()
        .find(|e| as_span(e).map(|(i, _, _)| i) == Some(job_id))
        .unwrap();
    let seg = spans
        .iter()
        .filter_map(|e| as_span(e).map(|s| (e, s)))
        .find(|(_, (_, p, k))| *p == Some(job_id) && matches!(k, SpanKind::Segment { .. }))
        .expect("job parents at least one segment span");
    let (seg_ev, (seg_id, _, _)) = seg;
    assert!(
        seg_ev.start >= job_ev.start - 1e-9 && seg_ev.end <= job_ev.end + 1e-9,
        "segment window [{}, {}] escapes job window [{}, {}]",
        seg_ev.start,
        seg_ev.end,
        job_ev.start,
        job_ev.end
    );
    let lvl = spans
        .iter()
        .filter_map(|e| as_span(e).map(|s| (e, s)))
        .find(|(_, (_, p, k))| *p == Some(seg_id) && matches!(k, SpanKind::Level { .. }))
        .expect("segment parents at least one level span");
    let (lvl_ev, _) = lvl;
    assert!(
        lvl_ev.start >= seg_ev.start - 1e-9 && lvl_ev.end <= seg_ev.end + 1e-9,
        "level escapes its segment window"
    );
}

/// The Chrome exporter renders a served span tree with flow arrows
/// linking parents to children.
#[test]
fn chrome_trace_shows_served_span_flow_arrows() {
    let (_, spans, _) = served_with_metrics();
    let mut trace = ChromeTrace::new();
    trace.add_process("serve", spans);
    let json = trace.render();
    assert!(json.contains("\"cat\":\"span\""), "span events rendered");
    assert!(json.contains("\"ph\":\"s\""), "flow start arrows present");
    assert!(
        json.contains("\"ph\":\"f\"") && json.contains("\"bp\":\"e\""),
        "flow finish arrows present"
    );
    assert!(json.contains("\"parent\""), "parent ids in args");
}
