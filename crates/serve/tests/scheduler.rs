//! End-to-end scheduler behavior over the simulated machine.

use hpu_algos::{DcSum, MergeSort};
use hpu_core::CoreError;
use hpu_machine::MachineConfig;
use hpu_model::ScheduleSpec;
use hpu_obs::JobOutcome;
use hpu_serve::{serve_sim, AlgoJob, JobRequest, Policy, ServeConfig, ServeError, ServeOutput};

fn input(n: usize) -> Vec<u64> {
    (0..n as u64).rev().collect()
}

fn sort_job(name: &str, spec: ScheduleSpec, n: usize, arrival: f64) -> JobRequest {
    JobRequest::new(
        name,
        spec,
        arrival,
        AlgoJob::boxed(MergeSort::new(), input(n)),
    )
}

fn solo_makespan(cfg: &MachineConfig, serve: &ServeConfig, job: JobRequest) -> f64 {
    let out = serve_sim(cfg, serve, vec![job]);
    assert_eq!(out.report.completed, 1, "solo job must complete");
    out.report.makespan
}

fn start_of(out: &ServeOutput, id: u64) -> f64 {
    out.report
        .jobs
        .iter()
        .find(|r| r.id == id)
        .expect("job record exists")
        .start
}

/// Acceptance (a): two GPU-wanting jobs must serialize their GPU
/// segments (exclusive lease) while their CPU segments overlap the other
/// job's GPU work, so serving both takes strictly less virtual time than
/// running them back to back.
#[test]
fn gpu_segments_serialize_while_cpu_work_overlaps() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        cpu_fallback: false,
        ..Default::default()
    };
    let spec = ScheduleSpec::Basic { crossover: Some(6) };
    let n = 1 << 12;
    let solo_a = solo_makespan(&cfg, &serve, sort_job("a", spec.clone(), n, 0.0));
    let solo_b = solo_makespan(&cfg, &serve, sort_job("b", spec.clone(), n, 0.0));

    let out = serve_sim(
        &cfg,
        &serve,
        vec![
            sort_job("a", spec.clone(), n, 0.0),
            sort_job("b", spec, n, 0.0),
        ],
    );
    assert_eq!(out.report.completed, 2);
    // One GPU lease per job, strictly serialized.
    assert_eq!(out.gpu_leases.len(), 2);
    let (_, e0) = out.gpu_leases[0];
    let (s1, _) = out.gpu_leases[1];
    assert!(e0 <= s1 + 1e-9, "GPU leases overlap: end {e0} > start {s1}");
    // Job b's GPU band ran under job a's CPU band: the fleet finishes
    // strictly earlier than back-to-back solos.
    assert!(
        out.report.makespan < solo_a + solo_b - 1e-9,
        "no overlap: fleet {} vs serial {}",
        out.report.makespan,
        solo_a + solo_b
    );
}

/// Acceptance (b): a full admission queue rejects new arrivals with a
/// typed error instead of blocking.
#[test]
fn full_queue_rejects_instead_of_blocking() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        queue_capacity: 1,
        cpu_fallback: false,
        ..Default::default()
    };
    let jobs = (0..3)
        .map(|i| sort_job(&format!("j{i}"), ScheduleSpec::GpuOnly, 1 << 10, 0.0))
        .collect();
    let out = serve_sim(&cfg, &serve, jobs);
    // j0 dispatches, j1 queues, j2 bounces off the bounded queue.
    assert_eq!(out.report.completed, 2);
    assert_eq!(out.report.rejected, 1);
    assert!(out.errors.iter().any(|e| matches!(
        e,
        ServeError::QueueFull {
            job: 2,
            capacity: 1
        }
    )));
    let rec = out.report.jobs.iter().find(|r| r.id == 2).unwrap();
    assert_eq!(rec.outcome, JobOutcome::QueueFull);
}

/// Acceptance (c): fleet latency percentiles are ordered, utilizations
/// are true fractions, and throughput is completions over makespan.
#[test]
fn fleet_report_is_internally_consistent() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig::default();
    let mut jobs = Vec::new();
    for i in 0..10u64 {
        let n = 1 << (8 + (i % 3));
        let spec = match i % 3 {
            0 => ScheduleSpec::CpuParallel,
            1 => ScheduleSpec::GpuOnly,
            _ => ScheduleSpec::Basic { crossover: Some(4) },
        };
        let arrival = i as f64 * 1_000.0;
        let job = if i % 2 == 0 {
            JobRequest::new(
                format!("sort-{i}"),
                spec,
                arrival,
                AlgoJob::boxed(MergeSort::new(), input(n)),
            )
        } else {
            JobRequest::new(
                format!("sum-{i}"),
                spec,
                arrival,
                AlgoJob::boxed(DcSum, input(n)),
            )
        };
        jobs.push(job);
    }
    let out = serve_sim(&cfg, &serve, jobs);
    let r = &out.report;
    assert_eq!(r.completed, 10);
    assert!(r.p50_latency <= r.p95_latency);
    assert!(r.p95_latency <= r.p99_latency);
    assert!(r.p99_latency <= r.max_latency);
    assert!(r.cpu_utilization <= 1.0 + 1e-9);
    assert!(r.gpu_utilization <= 1.0 + 1e-9);
    assert!((r.throughput - r.completed as f64 / r.makespan).abs() < 1e-12);
    // Every completed job carries a positive cost prediction and drift.
    assert!(r.mean_abs_drift.is_finite());
}

/// Shortest-predicted-cost-first lets a cheap late arrival overtake an
/// expensive earlier one; FIFO does not.
#[test]
fn shortest_cost_overtakes_where_fifo_waits() {
    let cfg = MachineConfig::hpu1_sim();
    let jobs = || {
        vec![
            sort_job("busy", ScheduleSpec::CpuParallel, 1 << 12, 0.0),
            sort_job("big", ScheduleSpec::CpuParallel, 1 << 12, 0.0),
            sort_job("small", ScheduleSpec::CpuParallel, 1 << 8, 0.0),
        ]
    };
    let spcf = serve_sim(&cfg, &ServeConfig::default(), jobs());
    let fifo = serve_sim(
        &cfg,
        &ServeConfig {
            policy: Policy::Fifo,
            ..Default::default()
        },
        jobs(),
    );
    assert_eq!(spcf.report.completed, 3);
    assert_eq!(fifo.report.completed, 3);
    assert!(
        start_of(&spcf, 2) < start_of(&spcf, 1),
        "SPCF should run the small job before the big one"
    );
    assert!(
        start_of(&fifo, 1) <= start_of(&fifo, 2),
        "FIFO must preserve arrival order"
    );
}

/// The starvation bound caps how many times a queued job is overtaken:
/// with bound 2, exactly two short jobs pass the long one before it
/// becomes rigid and dispatches.
#[test]
fn starvation_bound_limits_overtaking() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        policy: Policy::ShortestCost {
            starvation_bound: 2,
        },
        cpu_fallback: false,
        ..Default::default()
    };
    let mut jobs = vec![
        sort_job("filler", ScheduleSpec::CpuParallel, 1 << 10, 0.0),
        sort_job("long", ScheduleSpec::CpuParallel, 1 << 12, 0.0),
    ];
    for i in 0..4 {
        jobs.push(sort_job(
            &format!("short-{i}"),
            ScheduleSpec::CpuParallel,
            1 << 8,
            0.0,
        ));
    }
    let out = serve_sim(&cfg, &serve, jobs);
    assert_eq!(out.report.completed, 6);
    let long_start = start_of(&out, 1);
    let overtakes = out
        .report
        .jobs
        .iter()
        .filter(|r| r.id >= 2 && r.start < long_start - 1e-9)
        .count();
    assert_eq!(overtakes, 2, "bound 2 admits exactly two overtakes");
}

/// A deadline that provably cannot be met cancels the job with a typed
/// error instead of letting it rot in the queue.
#[test]
fn unmeetable_deadline_cancels_the_job() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        cpu_fallback: false,
        ..Default::default()
    };
    let solo = solo_makespan(
        &cfg,
        &serve,
        sort_job("long", ScheduleSpec::GpuOnly, 1 << 12, 0.0),
    );
    let jobs = vec![
        sort_job("long", ScheduleSpec::GpuOnly, 1 << 12, 0.0),
        sort_job("tight", ScheduleSpec::GpuOnly, 1 << 8, 0.0).with_deadline(solo * 0.5),
    ];
    let out = serve_sim(&cfg, &serve, jobs);
    assert_eq!(out.report.completed, 1);
    assert_eq!(out.report.cancelled, 1);
    assert!(out
        .errors
        .iter()
        .any(|e| matches!(e, ServeError::Cancelled { job: 1, .. })));
    let rec = out.report.jobs.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(rec.outcome, JobOutcome::Cancelled);
}

/// While a hog holds the GPU lease, a small GPU job reroutes onto its
/// CPU-only fallback plan instead of waiting for the device.
#[test]
fn contended_gpu_takes_the_cpu_fallback() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig::default();
    let jobs = vec![
        sort_job("hog", ScheduleSpec::GpuOnly, 1 << 13, 0.0),
        sort_job("nimble", ScheduleSpec::GpuOnly, 1 << 8, 0.0),
    ];
    let out = serve_sim(&cfg, &serve, jobs);
    assert_eq!(out.report.completed, 2);
    let rec = out.report.jobs.iter().find(|r| r.id == 1).unwrap();
    assert!(rec.fallback, "nimble should have taken the CPU fallback");
    let run = out.runs.iter().find(|r| r.id == 1).unwrap();
    assert!(run.fallback);
    // Only the hog ever leased the device.
    assert_eq!(out.gpu_leases.len(), 1);
}

/// A plan compiled for one input cannot silently run on another.
#[test]
fn plans_are_validated_against_their_input() {
    use hpu_core::exec::run_sim_plan;
    use hpu_machine::{SimHpu, SimMachineParams};
    use hpu_model::{compile, MachineParams};

    let cfg = MachineConfig::tiny();
    let params = MachineParams::from_config(&cfg);
    let algo = MergeSort::new();
    let rec = hpu_core::BfAlgorithm::<u64>::recurrence(&algo);
    let levels = hpu_core::bf::num_levels::<u64>(&algo, 256).unwrap();
    let plan = compile(&ScheduleSpec::CpuParallel, &params, &rec, 256, levels).unwrap();
    let mut data = input(512);
    let mut hpu = SimHpu::new(cfg);
    let got = run_sim_plan(&algo, &mut data, &mut hpu, &plan);
    assert!(matches!(got, Err(CoreError::MalformedPlan { .. })));
}

/// Regression: a plan with zero segments must be rejected with a typed
/// error by both the cost model and the executor — not panic with an
/// index underflow inside the scheduler's demand folding.
#[test]
fn empty_plans_are_rejected_not_priced_or_run() {
    use hpu_core::exec::run_sim_plan;
    use hpu_machine::SimHpu;
    use hpu_model::{plan_cost, LevelProfile, MachineParams, ModelError, Plan, Recurrence};

    let params = MachineParams::hpu1();
    let rec = Recurrence::mergesort();
    let profile = LevelProfile::new(&params, &rec, 256);
    let empty = Plan {
        n: 256,
        exec_levels: 8,
        segments: Vec::new(),
        resolved: ScheduleSpec::CpuParallel,
    };
    assert!(matches!(
        plan_cost(&profile, &empty),
        Err(ModelError::EmptyPlan)
    ));
    let mut data = input(256);
    let mut hpu = SimHpu::new(MachineConfig::tiny());
    let got = run_sim_plan(&MergeSort::new(), &mut data, &mut hpu, &empty);
    assert!(matches!(got, Err(CoreError::MalformedPlan { .. })));
}

fn miscalibrated_serve(cfg: &MachineConfig) -> ServeConfig {
    use hpu_machine::SimMachineParams;
    use hpu_model::{CalibratorConfig, MachineParams};

    // The scheduler believes the GPU is twice as fast as it really is.
    let truth = MachineParams::from_config(cfg);
    let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * 2.0).min(1.0))
        .unwrap()
        .with_transfer_cost(truth.lambda, truth.delta);
    ServeConfig {
        assumed: Some(assumed),
        calibration: Some(CalibratorConfig::default()),
        cpu_fallback: false,
        ..Default::default()
    }
}

/// Tentpole acceptance: on a machine whose γ is mis-specified by 2×, the
/// calibration loop fires at least one drift-triggered replan, later jobs
/// are priced under a positive calibration generation, and their drift is
/// smaller than the uncalibrated first jobs'.
#[test]
fn calibration_replans_and_shrinks_drift() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = miscalibrated_serve(&cfg);
    let jobs: Vec<JobRequest> = (0..8)
        .map(|i| sort_job(&format!("j{i}"), ScheduleSpec::GpuOnly, 1 << 10, 0.0))
        .collect();
    let out = serve_sim(&cfg, &serve, jobs);
    assert_eq!(out.report.completed, 8);
    assert!(out.replans >= 1, "a 2x gamma error must trigger a replan");
    let cal = out.calibration.expect("calibration state is reported");
    assert!(cal.samples >= 1);
    assert!(
        cal.gamma_scale < 0.95,
        "gamma correction should shrink toward the truth, got {}",
        cal.gamma_scale
    );
    let last = out.report.jobs.iter().find(|r| r.id == 7).unwrap();
    assert!(last.calibration_generation >= 1);
    assert!(
        out.report.mean_abs_drift_after < out.report.mean_abs_drift_before,
        "calibrated jobs should drift less: after {} vs before {}",
        out.report.mean_abs_drift_after,
        out.report.mean_abs_drift_before
    );
}

/// Calibration keeps the scheduler deterministic: two identical runs
/// produce identical reports, replan counts and final corrections.
#[test]
fn calibrated_serving_is_deterministic() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = miscalibrated_serve(&cfg);
    let jobs = || -> Vec<JobRequest> {
        (0..6)
            .map(|i| {
                sort_job(
                    &format!("j{i}"),
                    ScheduleSpec::GpuOnly,
                    1 << 10,
                    i as f64 * 10.0,
                )
            })
            .collect()
    };
    let a = serve_sim(&cfg, &serve, jobs());
    let b = serve_sim(&cfg, &serve, jobs());
    assert_eq!(a.report, b.report);
    assert_eq!(a.replans, b.replans);
    assert_eq!(a.calibration, b.calibration);
}

/// Without calibration nothing replans and no correction state is
/// reported — the open-loop behavior is preserved bit for bit.
#[test]
fn calibration_off_means_no_replans() {
    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig::default();
    let jobs = vec![
        sort_job("a", ScheduleSpec::GpuOnly, 1 << 10, 0.0),
        sort_job("b", ScheduleSpec::GpuOnly, 1 << 10, 0.0),
    ];
    let out = serve_sim(&cfg, &serve, jobs);
    assert_eq!(out.report.completed, 2);
    assert_eq!(out.replans, 0);
    assert!(out.calibration.is_none());
    assert!(out
        .report
        .jobs
        .iter()
        .all(|r| r.calibration_generation == 0));
}

/// An invalid calibration configuration surfaces as a typed error and
/// disables the loop instead of poisoning the run.
#[test]
fn invalid_calibration_config_disables_the_loop() {
    use hpu_model::CalibratorConfig;

    let cfg = MachineConfig::hpu1_sim();
    let serve = ServeConfig {
        calibration: Some(CalibratorConfig {
            smoothing: 0.0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = serve_sim(
        &cfg,
        &serve,
        vec![sort_job("a", ScheduleSpec::CpuParallel, 1 << 8, 0.0)],
    );
    assert_eq!(out.report.completed, 1);
    assert!(out.calibration.is_none());
    assert!(out
        .errors
        .iter()
        .any(|e| matches!(e, ServeError::Calibration { job: None, .. })));
}

/// The native path serves a small fleet on real threads and reports
/// ordered percentiles.
#[test]
fn native_serving_completes_a_small_fleet() {
    use hpu_serve::{serve_native, NativeJobRequest};

    let serve = ServeConfig::default();
    let jobs = (0..6u64)
        .map(|i| {
            NativeJobRequest::new(
                format!("sort-{i}"),
                i * 200,
                AlgoJob::boxed(MergeSort::new(), input(1 << 10)),
            )
        })
        .collect();
    let out = serve_native(&serve, 2, 2, jobs);
    let r = &out.report;
    assert_eq!(r.completed, 6);
    assert!(out.errors.is_empty());
    assert!(r.p50_latency <= r.p95_latency && r.p99_latency <= r.max_latency);
    assert!(r.cpu_utilization <= 1.0 + 1e-9, "busy intervals are merged");
    assert!(r.throughput > 0.0);
    // Without calibration the native path never learns a scale.
    assert_eq!(out.calibration_updates, 0);
    assert!(r.jobs.iter().all(|j| j.predicted == 0.0));
}

/// With calibration on, the native fleet learns a µs-per-op scale from
/// completions, so later jobs carry real wall-clock predictions.
#[test]
fn native_calibration_learns_a_prediction_scale() {
    use hpu_model::CalibratorConfig;
    use hpu_serve::{serve_native, NativeJobRequest};

    let serve = ServeConfig {
        calibration: Some(CalibratorConfig::default()),
        ..Default::default()
    };
    let jobs = (0..5u64)
        .map(|i| {
            NativeJobRequest::new(
                format!("sort-{i}"),
                i * 30_000,
                AlgoJob::boxed(MergeSort::new(), input(1 << 10)),
            )
        })
        .collect();
    let out = serve_native(&serve, 1, 2, jobs);
    assert_eq!(out.report.completed, 5);
    assert!(out.calibration_updates >= 1);
    assert!(
        out.report
            .jobs
            .iter()
            .any(|r| r.predicted > 0.0 && r.calibration_generation >= 1),
        "jobs priced after the first completion should carry predictions"
    );
}

/// The plan cache is observationally transparent: serving with it on
/// produces identical job records to serving with it off, while
/// deduplicating compiles and reporting a positive hit rate.
#[test]
fn plan_cache_is_transparent_and_dedupes_compiles() {
    let cfg = MachineConfig::hpu1_sim();
    let spec = ScheduleSpec::Basic { crossover: Some(6) };
    let jobs = || -> Vec<JobRequest> {
        (0..6)
            .map(|i| sort_job(&format!("j{i}"), spec.clone(), 1 << 10, i as f64 * 5.0))
            .collect()
    };
    let cached = serve_sim(&cfg, &ServeConfig::default(), jobs());
    let uncached = serve_sim(
        &cfg,
        &ServeConfig {
            plan_cache: None,
            ..Default::default()
        },
        jobs(),
    );
    assert_eq!(cached.report.jobs, uncached.report.jobs);
    let stats = cached.plan_cache.expect("cache stats are reported");
    assert!(stats.hits >= 1, "duplicate shapes must hit the cache");
    assert!(cached.report.plan_cache_hits >= 1);
    assert!(cached.report.plan_cache_hit_rate() > 0.0);
    assert!(uncached.plan_cache.is_none());
    assert_eq!(uncached.report.plan_cache_hits, 0);
    assert_eq!(uncached.report.plan_cache_hit_rate(), 0.0);
}

/// Acceptance: a drift-triggered calibration replan is a generation bump
/// plus lazy cache re-fill, not a synchronous recompile storm. With the
/// cache on, the same miscalibrated fleet needs strictly fewer fresh
/// compiles than with it off, because queued jobs sharing a shape
/// compile once per generation and unchanged plans merely re-price.
#[test]
fn replan_bumps_generation_instead_of_recompiling_queued_jobs() {
    use hpu_obs::{MetricValue, MetricsRegistry};
    use std::sync::Arc;

    let cfg = MachineConfig::hpu1_sim();
    let run = |plan_cache: Option<usize>| -> (u64, u64) {
        let metrics = Arc::new(MetricsRegistry::new());
        let serve = ServeConfig {
            metrics: Some(metrics.clone()),
            plan_cache,
            ..miscalibrated_serve(&cfg)
        };
        // Simultaneous arrivals: the GPU lease serializes the fleet, so
        // most jobs are still queued when the first completion's drift
        // evidence triggers the replan.
        let jobs: Vec<JobRequest> = (0..8)
            .map(|i| sort_job(&format!("j{i}"), ScheduleSpec::GpuOnly, 1 << 10, 0.0))
            .collect();
        let out = serve_sim(&cfg, &serve, jobs);
        assert_eq!(out.report.completed, 8);
        let snap = metrics.snapshot();
        let compiles = match snap.get("model.compiles") {
            Some(MetricValue::Counter(c)) => *c,
            other => panic!("model.compiles: expected a counter, got {other:?}"),
        };
        (compiles, out.replans)
    };
    let (with_cache, replans_on) = run(Some(64));
    let (without_cache, replans_off) = run(None);
    assert!(replans_on >= 1, "drift must trigger a replan (cache on)");
    assert!(replans_off >= 1, "drift must trigger a replan (cache off)");
    assert!(
        with_cache < without_cache,
        "the cache must cut replan compiles: {with_cache} (on) vs {without_cache} (off)"
    );
}
