//! Bringing your own algorithm to the framework — the "generic
//! translation" in practice (paper §4).
//!
//! Two user-defined algorithms:
//!
//! 1. a min/max range reduction in the regular in-place form, which gets
//!    every scheduler (CPU-only, GPU-only, basic, advanced) for free;
//! 2. a word-count over text chunks in the general tree form
//!    (Algorithms 1 & 2), executed recursively, breadth-first and on real
//!    threads.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use hpu::prelude::*;
use hpu_core::tree::{run_breadth_first, run_recursive, run_threaded};
use hpu_model::CostFn;

/// Element carrying a (min, max) summary of its chunk in slot 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct MinMax {
    min: i64,
    max: i64,
}

/// In-place D&C min/max reduction: `T(n) = 2T(n/2) + Θ(1)`.
struct MinMaxReduce;

impl BfAlgorithm<MinMax> for MinMaxReduce {
    fn name(&self) -> &'static str {
        "minmax"
    }
    fn base_case(&self, _chunk: &mut [MinMax], charge: &mut dyn Charge) {
        charge.ops(1);
    }
    fn combine(&self, src: &[MinMax], dst: &mut [MinMax], charge: &mut dyn Charge) {
        let half = src.len() / 2;
        dst[0] = MinMax {
            min: src[0].min.min(src[half].min),
            max: src[0].max.max(src[half].max),
        };
        charge.ops(2);
        charge.mem(3);
    }
    fn recurrence(&self) -> Recurrence {
        Recurrence::new(2, 2, CostFn::Constant(5.0), 1.0).unwrap()
    }
}

/// Tree-form word count: a subproblem is a slice of lines.
struct WordCount<'a> {
    lines: &'a [&'a str],
}

impl DivideConquer for WordCount<'_> {
    type Param = (usize, usize);
    type Output = usize;
    fn is_base(&self, &(lo, hi): &(usize, usize)) -> bool {
        hi - lo <= 1
    }
    fn base_case(&self, (lo, hi): (usize, usize), charge: &mut dyn Charge) -> usize {
        let count = self.lines[lo..hi]
            .iter()
            .map(|l| l.split_whitespace().count())
            .sum();
        charge.ops(count as u64 + 1);
        count
    }
    fn divide(&self, &(lo, hi): &(usize, usize), charge: &mut dyn Charge) -> Vec<(usize, usize)> {
        charge.ops(1);
        let mid = lo + (hi - lo) / 2;
        vec![(lo, mid), (mid, hi)]
    }
    fn combine(&self, _p: (usize, usize), children: Vec<usize>, charge: &mut dyn Charge) -> usize {
        charge.ops(1);
        children.iter().sum()
    }
}

fn main() {
    // --- 1. The regular in-place form gets hybrid scheduling for free ---
    let n = 1 << 12;
    let values: Vec<MinMax> = (0..n as i64)
        .map(|i| {
            let v = (i * 37 % 1001) - 500;
            MinMax { min: v, max: v }
        })
        .collect();

    println!("min/max reduction over {n} values, every strategy:");
    for (name, strategy) in [
        ("sequential", Strategy::Sequential),
        ("cpu-only", Strategy::CpuOnly),
        ("gpu-only", Strategy::GpuOnly),
        ("basic", Strategy::Basic { crossover: None }),
        (
            "advanced",
            Strategy::Advanced {
                alpha: 0.2,
                transfer_level: 5,
            },
        ),
    ] {
        let mut data = values.clone();
        let mut hpu = SimHpu::new(MachineConfig::hpu2_sim());
        let report = run_sim(&MinMaxReduce, &mut data, &mut hpu, &strategy).unwrap();
        println!(
            "  {:<11} -> min {:>4}, max {:>4}, virtual time {:>10.0}",
            name, data[0].min, data[0].max, report.virtual_time
        );
    }

    // --- 2. The tree form handles irregular problems -------------------
    let text = [
        "the standard approach to a divide and conquer algorithm",
        "involves dividing the problem into smaller subproblems",
        "recursively solving these subproblems",
        "and combining the solutions of the subproblems into a final solution",
        "a careful task division must be done",
        "so that each portion of the algorithm can run",
        "on the platform that suits best its characteristics",
    ];
    let lines: Vec<&str> = text.to_vec();
    let algo = WordCount { lines: &lines };
    let mut charge = hpu_core::charge::CountingCharge::default();
    let recursive = run_recursive(&algo, (0, lines.len()), &mut charge);
    let bf = run_breadth_first(&algo, (0, lines.len()), &mut hpu_core::charge::NullCharge);
    let pool = LevelPool::new(2);
    let threaded = run_threaded(&algo, (0, lines.len()), &pool);

    println!("\nword count over {} lines:", lines.len());
    println!("  recursive (Algorithm 1):      {recursive}");
    println!("  breadth-first (Algorithm 2):  {bf}");
    println!("  threaded (2 workers):         {threaded}");
    println!("  ops charged by the recursion: {}", charge.ops);
    assert_eq!(recursive, bf);
    assert_eq!(recursive, threaded);
}
