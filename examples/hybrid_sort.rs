//! The full paper workflow on one input: estimate the machine parameters
//! (§6.4), solve the advanced work division analytically (§5.2), run the
//! hybrid sort, and show the virtual timeline of what each unit did.
//!
//! ```text
//! cargo run --release --example hybrid_sort [log2_n]
//! ```

use hpu::prelude::*;
use hpu_model::advanced::AdvancedSolver;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let n = 1usize << log_n;
    let cfg = MachineConfig::hpu1_sim();

    // 1. Estimate the machine parameters like the paper does (Table 2).
    println!("== step 1: parameter estimation (paper §6.4) ==");
    let params = estimate_params(&cfg);
    println!(
        "estimated: p = {}, g = {}, γ⁻¹ = {:.1}\n",
        params.p,
        params.g,
        1.0 / params.gamma
    );

    // 2. Solve the advanced work division on those parameters.
    println!("== step 2: advanced schedule analysis (paper §5.2) ==");
    let algo = MergeSort::new();
    let rec = BfAlgorithm::<u32>::recurrence(&algo);
    let solver = AdvancedSolver::new(&params, &rec, n as u64).expect("valid size");
    let opt = solver.optimize();
    println!(
        "α* = {:.3}, transfer level y = {:.2}, GPU work share = {:.1}% ({:?})\n",
        opt.alpha,
        opt.transfer_level,
        100.0 * opt.gpu_work_fraction,
        opt.saturation
    );

    // 3. Run sequential baseline and the tuned hybrid.
    println!("== step 3: execution ==");
    let input: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();

    let mut seq_data = input.clone();
    let mut hpu = SimHpu::new(cfg.clone());
    let seq = run_sim(&algo, &mut seq_data, &mut hpu, &Strategy::Sequential).unwrap();

    let strategy = Strategy::Advanced {
        alpha: opt.alpha,
        transfer_level: (opt.transfer_level.round() as u32).clamp(1, log_n),
    };
    let mut data = input.clone();
    let mut hpu = SimHpu::new(cfg);
    let report = run_sim(&algo, &mut data, &mut hpu, &strategy).unwrap();
    assert!(data.windows(2).all(|w| w[0] <= w[1]));

    println!(
        "sequential: {:>14.0}   hybrid: {:>14.0}   speedup: {:.2}x",
        seq.virtual_time,
        report.virtual_time,
        seq.virtual_time / report.virtual_time
    );
    if let Some((cpu_phase, gpu_phase)) = report.concurrent {
        println!(
            "concurrent phase: CPU {:.0}, GPU {:.0} (ratio {:.2} — ~1 means balanced)",
            cpu_phase,
            gpu_phase,
            gpu_phase / cpu_phase
        );
    }

    // 4. Show what each unit actually did.
    println!("\n== step 4: virtual timeline (first 12 events) ==");
    let timeline = hpu.timeline();
    for event in timeline.events().iter().take(12) {
        println!(
            "{:>4} [{:>12.0} .. {:>12.0}] {}",
            event.unit.to_string(),
            event.start,
            event.end,
            event.label()
        );
    }
    let more = timeline.events().len().saturating_sub(12);
    if more > 0 {
        println!("... and {more} more events");
    }
}
