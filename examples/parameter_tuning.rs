//! Parameter estimation and empirical tuning: regenerates the data behind
//! the paper's Figures 5, 6 and 10 at a small scale and compares the
//! model's predicted `(α, y)` with a simulator grid search.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

use hpu::prelude::*;
use hpu_core::tune::grid_search_sim;
use hpu_estimate::{estimate_g, estimate_gamma};

fn main() {
    let cfg = MachineConfig::hpu2_sim();
    println!("platform: simulated HPU2 (integrated GPU, 1200 lanes, γ⁻¹ = 65)\n");

    // Figure 5: the saturation sweep.
    println!("== GPU saturation sweep (Figure 5) ==");
    let sweep = estimate_g(&cfg, 1 << 14);
    println!("{:>8} {:>14}", "threads", "launch time");
    for (threads, time) in sweep.samples.iter().take(14) {
        println!("{threads:>8} {time:>14.0}");
    }
    println!("--> estimated g = {}\n", sweep.g);

    // Figure 6: the scalar-speed ratio.
    println!("== single-thread merge ratio (Figure 6) ==");
    let gamma = estimate_gamma(&cfg, &[1 << 8, 1 << 10, 1 << 12, 1 << 14]);
    println!("{:>8} {:>12}", "size", "GPU/CPU");
    for (size, ratio) in &gamma.samples {
        println!("{size:>8} {ratio:>12.1}");
    }
    println!("--> estimated γ⁻¹ = {:.1}\n", gamma.gamma_inv);

    // Figure 10: model prediction vs empirical grid search.
    println!("== predicted vs empirically best (α, y) (Figure 10) ==");
    let n = 1 << 12;
    let algo = MergeSort::new();
    let rec = BfAlgorithm::<u32>::recurrence(&algo);
    let predicted = auto_advanced(&cfg, &rec, n as u64).unwrap();
    let (alpha_pred, y_pred) = match predicted {
        Strategy::Advanced {
            alpha,
            transfer_level,
        } => (alpha, transfer_level),
        _ => unreachable!(),
    };
    let alphas: Vec<f64> = (1..=8).map(|k| k as f64 * 0.05).collect();
    let ys: Vec<u32> = (y_pred.saturating_sub(2).max(1)..=(y_pred + 2).min(12)).collect();
    let found = grid_search_sim(&algo, &cfg, &alphas, &ys, || {
        (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect()
    })
    .expect("grid search runs");
    println!("model:  α = {alpha_pred:.3}, y = {y_pred}");
    println!(
        "search: α = {:.3}, y = {} (best of {} simulated runs)",
        found.alpha,
        found.transfer_level,
        found.samples.len()
    );
}
