//! Quickstart: sort on a simulated hybrid machine with every scheduling
//! strategy and compare their virtual times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpu::prelude::*;

fn main() {
    let n = 1 << 16;
    println!("mergesort of {n} uniform keys on the simulated HPU1\n");

    // The paper's workload: keys uniform in [0, 2n).
    let input: Vec<u32> = {
        let mut state = 0x243F6A8885A308D3u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % (2 * n as u64)) as u32
            })
            .collect()
    };

    let algo = MergeSort::new();
    let rec = BfAlgorithm::<u32>::recurrence(&algo);
    let cfg = MachineConfig::hpu1_sim();
    let advanced = auto_advanced(&cfg, &rec, n as u64).expect("power-of-two size");
    println!("model-tuned advanced schedule: {advanced:?}\n");

    let strategies = [
        ("sequential (1 core)", Strategy::Sequential),
        ("CPU-only (4 cores)", Strategy::CpuOnly),
        ("GPU-only", Strategy::GpuOnly),
        ("basic hybrid", Strategy::Basic { crossover: None }),
        ("advanced hybrid", advanced),
    ];

    let mut base = None;
    println!(
        "{:<22} {:>16} {:>9} {:>10} {:>9}",
        "strategy", "virtual time", "speedup", "transfers", "words"
    );
    for (name, strategy) in strategies {
        let mut data = input.clone();
        let mut hpu = SimHpu::new(cfg.clone());
        let report = run_sim(&algo, &mut data, &mut hpu, &strategy).expect("run succeeds");
        assert!(
            data.windows(2).all(|w| w[0] <= w[1]),
            "output must be sorted"
        );
        let base_time = *base.get_or_insert(report.virtual_time);
        println!(
            "{:<22} {:>16.0} {:>8.2}x {:>10} {:>9}",
            name,
            report.virtual_time,
            base_time / report.virtual_time,
            report.transfers,
            report.words
        );
    }

    println!("\nThe advanced hybrid splits the tree between both units and");
    println!("moves data across the bus exactly twice (paper §5.2).");
}
