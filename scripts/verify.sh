#!/usr/bin/env bash
# Full offline verification: build, test, lint, format. This is the same
# gate CI would run; it needs no network access and no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== proptest suite (optional) =="
# tests/properties.rs needs the external proptest crate; the feature flag
# alone is not enough. Run it only when the dependency is actually wired in.
if grep -Eq '^proptest *= *"' Cargo.toml; then
    cargo test -q --features proptest --test properties
else
    echo "proptest dependency not vendored; skipping (tests/randomized.rs covers the same properties)"
fi

echo "== chaos (fault-injection suite, three seeds) =="
# The suite reads CHAOS_SEED (default 42); sweeping a few fixed seeds
# catches seed-dependent regressions in the recovery paths.
for seed in 42 7 1234; do
    CHAOS_SEED=$seed cargo test -q --test chaos
done
# Smoke the degradation CSV: goodput must be present and the run fault-free
# at rate 0.
cargo run -q --release -p hpu-bench --bin repro -- chaos \
    --jobs 8 --rates 0,0.2 --backend sim --seed 42 \
    | grep -q '^sim,0,8,8,' || { echo "chaos CSV smoke failed"; exit 1; }

echo "== fleet scaling (smoke) =="
# The multi-node layer must produce the pinned scaling CSV: header plus a
# 4-node row at saturating load where the fleet still completes more than
# a lone node would.
cargo run -q --release -p hpu-bench --bin repro -- fleet \
    --jobs 16 --nodes 1,4 --rates 6,96 --seed 42 \
    | grep -q '^4,96,16,' || { echo "fleet CSV smoke failed"; exit 1; }

echo "== crash recovery (smoke) =="
# The node-crash fault domain must produce the pinned recovery CSV: at
# seed 43 the rate-0.3 plan crashes exactly one of the 4 nodes, and the
# everylevel row must recover checkpointed work (11th column is
# levels_saved) while the off row restarts it from scratch — both at
# full goodput.
recover_csv=$(cargo run -q --release -p hpu-bench --bin repro -- recover \
    --jobs 16 --rates 0,0.3 --seed 43)
echo "$recover_csv" | grep -q '^policy,crash_rate,' || { echo "recover CSV header missing"; exit 1; }
echo "$recover_csv" | grep -q '^off,0,16,16,1.0000,0.0000,0,0,0,0,0,0' \
    || { echo "recover CSV rate-0 row not fault-free"; exit 1; }
echo "$recover_csv" | awk -F, '$1 == "everylevel" && $2 == 0.3 && $4 == 16 && $11 > 0 { found = 1 } END { exit !found }' \
    || { echo "recover CSV smoke failed: everylevel saved no levels at rate 0.3"; exit 1; }
echo "$recover_csv" | awk -F, '$1 == "off" && $2 == 0.3 && $4 == 16 && $11 == 0 { found = 1 } END { exit !found }' \
    || { echo "recover CSV smoke failed: off row should save no levels"; exit 1; }

echo "== cross-job batching (smoke) =="
# The batching curve must render both policy row groups, stay
# deterministic, and the batch rows must actually form batches at an
# overloaded rate (the 9th column is batches formed).
batch_csv=$(cargo run -q --release -p hpu-bench --bin repro -- batch \
    --jobs 24 --rates 1,3,8 --seed 42)
echo "$batch_csv" | grep -q '^mode,rate,' || { echo "batch CSV header missing"; exit 1; }
echo "$batch_csv" | grep -q '^off,8,24,' || { echo "batch CSV off rows missing"; exit 1; }
echo "$batch_csv" | awk -F, '$1 == "batch" && $2 == 8 && $9 > 0 { found = 1 } END { exit !found }' \
    || { echo "batch CSV smoke failed: no batches formed at rate 8"; exit 1; }

echo "== perf snapshot (smoke) =="
# The quick matrix must produce a parseable, schema-compatible snapshot;
# magnitude is not gated here (wall-clock metrics vary per machine), so
# the comparison runs in --smoke mode against the newest committed
# baseline (the highest-seq BENCH_*.json at the repo root).
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p hpu-bench --bin repro -- perf \
    --quick --label verify --seed 42 --out "$tmpdir"
cargo run -q --release -p hpu-bench --bin repro -- perf \
    --compare-newest . "$tmpdir/BENCH_verify.json" --smoke \
    || { echo "perf snapshot smoke comparison failed"; exit 1; }

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all --check

echo "verify: OK"
