#!/usr/bin/env bash
# Full offline verification: build, test, lint, format. This is the same
# gate CI would run; it needs no network access and no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== proptest suite (optional) =="
# tests/properties.rs needs the external proptest crate; the feature flag
# alone is not enough. Run it only when the dependency is actually wired in.
if grep -Eq '^proptest *= *"' Cargo.toml; then
    cargo test -q --features proptest --test properties
else
    echo "proptest dependency not vendored; skipping (tests/randomized.rs covers the same properties)"
fi

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all --check

echo "verify: OK"
