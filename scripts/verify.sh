#!/usr/bin/env bash
# Full offline verification: build, test, lint, format. This is the same
# gate CI would run; it needs no network access and no external crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all --check

echo "verify: OK"
