//! # hpu — generic hybrid CPU-GPU parallelization of divide-and-conquer
//! algorithms
//!
//! An open-source reproduction of López-Ortiz, Salinger & Suderman,
//! *"Toward a Generic Hybrid CPU-GPU Parallelization of Divide-and-Conquer
//! Algorithms"* (IJNC 4(1), 2014; IPDPS-W 2013): a generic framework that
//! turns a recursive divide-and-conquer algorithm into a breadth-first,
//! hybrid CPU-GPU execution, plus the analytic machine model that splits
//! the work optimally between the two units.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`model`] — the HPU machine model and the basic/advanced schedule
//!   analysis (`hpu-model`);
//! * [`machine`] — a deterministic virtual-clock simulation of the hybrid
//!   platform: multicore CPU with an LLC model, wave-executing GPU with a
//!   coalescing cost model, `λ + δw` bus (`hpu-machine`);
//! * [`core`] — the generic D&C framework: the tree form (Algorithms 1-2),
//!   the regular in-place breadth-first form, executors for every
//!   schedule, a native thread pool, and model-driven auto-tuning
//!   (`hpu-core`);
//! * [`algos`] — mergesort (the paper's case study, §6) and further D&C
//!   algorithms (`hpu-algos`);
//! * [`estimate`] — the §6.4 parameter-estimation procedures
//!   (`hpu-estimate`);
//! * [`obs`] — dependency-free observability: typed trace events, a Chrome
//!   trace exporter, per-level metrics and model-vs-simulation drift
//!   reports (`hpu-obs`);
//! * [`serve`] — multi-job serving on one shared machine: cost-model
//!   admission, device arbitration (exclusive GPU lease over a
//!   partitionable CPU pool), bounded-queue backpressure, deadlines and
//!   fleet metrics (`hpu-serve`);
//! * [`fleet`] — multi-node serving above [`serve`]: cost/affinity
//!   routing under each node's own beliefs, cross-node work stealing at
//!   deterministic event boundaries, per-node calibration isolation and
//!   a merged fleet report with an omniscient routing oracle
//!   (`hpu-fleet`).
//!
//! ## Quickstart
//!
//! ```
//! use hpu::prelude::*;
//!
//! // A simulated analogue of the paper's HPU1 platform.
//! let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
//!
//! // Sort 4096 keys with the model-tuned advanced hybrid schedule.
//! let algo = MergeSort::new();
//! let rec = BfAlgorithm::<u32>::recurrence(&algo);
//! let strategy = auto_advanced(hpu.config(), &rec, 4096).unwrap();
//! let mut data: Vec<u32> = (0..4096u32).rev().collect();
//! let report = run_sim(&algo, &mut data, &mut hpu, &strategy).unwrap();
//!
//! assert!(data.windows(2).all(|w| w[0] <= w[1]));
//! assert_eq!(report.transfers, 2); // the advanced schedule's guarantee
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hpu_algos as algos;
pub use hpu_core as core;
pub use hpu_estimate as estimate;
pub use hpu_fleet as fleet;
pub use hpu_machine as machine;
pub use hpu_model as model;
pub use hpu_obs as obs;
pub use hpu_serve as serve;

/// Commonly used items in one import.
pub mod prelude {
    pub use hpu_algos::mergesort::MergeSort;
    pub use hpu_algos::sum::DcSum;
    pub use hpu_core::exec::{
        run_native, run_native_report, run_sim, NativeReport, RunReport, Strategy,
    };
    pub use hpu_core::pool::LevelPool;
    pub use hpu_core::tune::{auto_advanced, auto_strategy};
    pub use hpu_core::{BfAlgorithm, Charge, CoreError, DivideConquer};
    pub use hpu_estimate::estimate_params;
    pub use hpu_machine::{MachineConfig, SimHpu};
    pub use hpu_model::{MachineParams, Recurrence};
}
