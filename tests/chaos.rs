//! Fault-injection invariants over the serving stack (the ISSUE 5
//! acceptance scenarios): transient faults must be absorbed, permanent
//! device loss must degrade — never panic or hang — and recovery must
//! not corrupt the scheduler's bookkeeping.
//!
//! The seed is `CHAOS_SEED` when set (any u64), 42 otherwise, so CI can
//! sweep seeds without editing the suite.

use hpu_algos::mergesort::MergeSort;
use hpu_core::exec::RecoveryPolicy;
use hpu_machine::{FaultPlan, MachineConfig, SimMachineParams};
use hpu_model::{CalibratorConfig, MachineParams, ScheduleSpec};
use hpu_obs::JobOutcome;
use hpu_serve::{serve_sim, AlgoJob, FaultConfig, JobRequest, ServeConfig};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A GPU-leaning mixed fleet: sizes cycle 256/512/1024, schedules cycle
/// basic-hybrid / GPU-only / CPU-parallel, arrivals are evenly spaced.
fn fleet(jobs: usize, gap: f64) -> Vec<JobRequest> {
    (0..jobs)
        .map(|i| {
            let n = 256usize << (i % 3);
            let spec = match i % 3 {
                0 => ScheduleSpec::Basic { crossover: Some(4) },
                1 => ScheduleSpec::GpuOnly,
                _ => ScheduleSpec::CpuParallel,
            };
            let data: Vec<u32> = (0..n as u32).rev().collect();
            JobRequest::new(
                format!("sort-{i}-n{n}"),
                spec,
                i as f64 * gap,
                AlgoJob::boxed(MergeSort::new(), data),
            )
        })
        .collect()
}

fn serve_cfg(jobs: usize, faults: Option<FaultConfig>) -> ServeConfig {
    ServeConfig {
        queue_capacity: jobs.max(1),
        faults,
        ..ServeConfig::default()
    }
}

/// ISSUE acceptance: with a transient-only `FaultPlan`, `serve_sim`
/// completes the *same job set* as a fault-free run — every fault is
/// either retried away or absorbed by CPU-only degradation.
#[test]
fn transient_only_faults_complete_the_same_job_set_as_fault_free() {
    let cfg = MachineConfig::tiny();
    let jobs = 12;

    let clean = serve_sim(&cfg, &serve_cfg(jobs, None), fleet(jobs, 500.0));
    let plan = FaultPlan::new(chaos_seed())
        .with_kernel_rate(0.3)
        .with_transfer_rate(0.15);
    assert!(plan.is_transient_only());
    let faulted = serve_sim(
        &cfg,
        &serve_cfg(jobs, Some(FaultConfig::new(plan))),
        fleet(jobs, 500.0),
    );

    let completed = |out: &hpu_serve::ServeOutput| -> Vec<u64> {
        let mut ids: Vec<u64> = out
            .report
            .jobs
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(
        completed(&clean).len(),
        jobs,
        "fault-free run completes all"
    );
    assert_eq!(
        completed(&clean),
        completed(&faulted),
        "transient-only faults must not lose jobs (errors: {:?})",
        faulted.errors
    );
    assert!(
        faulted.report.fault_events > 0,
        "a 30% kernel rate must actually inject faults"
    );
}

/// ISSUE acceptance: permanent GPU loss mid-fleet. Every job must end in
/// a *typed* terminal state — completed (possibly degraded to CPU-only)
/// or a typed failure/cancellation — with no panic and no hang, and the
/// breaker must trip so later GPU jobs are steered to the CPU upfront.
#[test]
fn permanent_device_loss_yields_only_typed_outcomes() {
    let cfg = MachineConfig::tiny();
    let jobs = 12;
    let plan = FaultPlan::new(chaos_seed()).with_device_loss_at(40);
    assert!(!plan.is_transient_only());
    let out = serve_sim(
        &cfg,
        &serve_cfg(jobs, Some(FaultConfig::new(plan))),
        fleet(jobs, 500.0),
    );

    assert_eq!(out.report.jobs.len(), jobs, "one record per submission");
    for r in &out.report.jobs {
        assert!(
            matches!(
                r.outcome,
                JobOutcome::Completed | JobOutcome::Failed { .. } | JobOutcome::Cancelled
            ),
            "job {} ended in an untyped state: {:?}",
            r.id,
            r.outcome
        );
    }
    assert!(
        out.report.breaker_trips >= 1,
        "losing the device must trip the GPU circuit breaker"
    );
    assert!(
        out.report.completed_degraded >= 1,
        "jobs after the loss must complete on degraded CPU-only plans"
    );
    assert!(
        out.report.completed + out.report.failed + out.report.cancelled + out.report.rejected
            == jobs,
        "outcome counts must partition the fleet: {:?}",
        out.report
    );
}

/// Satellite 2 regression: a job cancelled *after* its device slots were
/// committed (the straggler path — retry backoff pushed its true
/// completion past the deadline) must hand its reservations back, so a
/// later arrival starts in the window the cancelled job had reserved.
#[test]
fn cancelled_straggler_releases_its_slot_for_later_arrivals() {
    let cfg = MachineConfig::tiny();
    // A mild rate: a retried segment re-runs every launch in it, so high
    // rates make each retry attempt near-certain to fault again and the
    // job degrades to CPU-only instead of straggling on the GPU.
    let mut fc = FaultConfig::new(FaultPlan::new(chaos_seed()).with_kernel_rate(0.08));
    // Generous retries and a breaker that never opens: every fault is
    // retried on the GPU, so the run carries backoff overhang but stays
    // on its GPU plan.
    fc.recovery = RecoveryPolicy {
        max_retries: 12,
        backoff_base: 50.0,
        backoff_factor: 2.0,
        // Above the natural maximum (50·2^11): the cap must not change
        // this scenario's virtual times.
        max_backoff: f64::INFINITY,
    };
    fc.breaker_threshold = 1000;

    let job = |i: usize, arrival: f64| {
        let data: Vec<u32> = (0..1024u32).rev().collect();
        JobRequest::new(
            format!("gpu-{i}"),
            ScheduleSpec::GpuOnly,
            arrival,
            AlgoJob::boxed(MergeSort::new(), data),
        )
    };

    // Phase 1: observe job 0's committed calendar end and retry count
    // under this seed, with no deadline.
    let probe = serve_sim(
        &cfg,
        &serve_cfg(2, Some(fc.clone())),
        vec![job(0, 0.0), job(1, 1.0)],
    );
    let r0 = &probe.report.jobs[0];
    assert_eq!(r0.outcome, JobOutcome::Completed);
    assert!(
        r0.retries >= 1,
        "seed {} must make job 0 retry at least once (got {})",
        chaos_seed(),
        r0.retries
    );
    let committed_end = r0.end;

    // Phase 2: same fleet, but job 0's deadline equals its committed
    // calendar end. The pre-commit probe accepts it (the calendars say it
    // fits); the post-commit straggler check sees the backoff overhang
    // and cancels — the regression is whether the committed slots come
    // back. Job 1 must then start inside job 0's released window.
    let strict = serve_sim(
        &cfg,
        &serve_cfg(2, Some(fc)),
        vec![job(0, 0.0).with_deadline(committed_end), job(1, 1.0)],
    );
    let s0 = &strict.report.jobs[0];
    let s1 = &strict.report.jobs[1];
    assert_eq!(
        s0.outcome,
        JobOutcome::Cancelled,
        "job 0's overhang must miss the calendar-exact deadline"
    );
    assert_eq!(s1.outcome, JobOutcome::Completed);
    let first_lease = strict
        .gpu_leases
        .first()
        .expect("job 1 runs GPU-only, it must hold a lease");
    assert!(
        first_lease.0 < committed_end,
        "job 1's lease ({:?}) must reuse the window job 0 released (< {})",
        first_lease,
        committed_end
    );
}

/// Fleet satellite: killing one node's GPU mid-burst reroutes that
/// node's queued jobs to healthy peers (DeviceLost migrations, each
/// landing in the receiving node's report), and fleet goodput degrades
/// by at most the dead node's capacity share.
#[test]
fn fleet_survives_one_node_gpu_loss_within_capacity_share() {
    use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, StealReason};

    let nodes = 4usize;
    let jobs = 16usize;
    let machine = MachineConfig::tiny();
    // No CPU fallback: contended GPU jobs wait in the queue, so the
    // breaker trip has a queue to reroute.
    let base = ServeConfig {
        queue_capacity: jobs,
        cpu_fallback: false,
        ..ServeConfig::default()
    };
    let burst = || -> Vec<FleetJobRequest> {
        (0..jobs)
            .map(|i| {
                let n = 256usize << (i % 3);
                let data: Vec<u32> = (0..n as u32).rev().collect();
                FleetJobRequest::new(
                    format!("sort-{i}-n{n}"),
                    ScheduleSpec::GpuOnly,
                    0.0,
                    AlgoJob::boxed(MergeSort::new(), data),
                )
            })
            .collect()
    };
    let specs = |doom: bool| -> Vec<NodeSpec> {
        (0..nodes)
            .map(|i| {
                let mut serve = base.clone();
                if doom && i == 0 {
                    serve.faults = Some(FaultConfig::new(
                        FaultPlan::new(chaos_seed()).with_device_loss_at(25),
                    ));
                }
                NodeSpec::new(format!("n{i}"), machine.clone()).with_serve(serve)
            })
            .collect()
    };

    let clean = fleet_sim(&FleetConfig::new(specs(false)), burst());
    let faulted = fleet_sim(&FleetConfig::new(specs(true)), burst());

    // The dead node's queue was rerouted, not abandoned: DeviceLost
    // migrations exist, all flow out of node 0, and every rerouted job
    // shows up in its receiving node's report.
    let rerouted: Vec<_> = faulted
        .steals
        .iter()
        .filter(|e| e.reason == StealReason::DeviceLost)
        .collect();
    assert!(
        !rerouted.is_empty(),
        "losing node 0's GPU must evacuate its queue (steals: {:?})",
        faulted.steals
    );
    assert!(rerouted.iter().all(|e| e.from == 0));
    for e in &rerouted {
        assert!(
            faulted.nodes[e.to]
                .report
                .jobs
                .iter()
                .any(|r| r.id == e.job),
            "rerouted job {} must be accounted for by node {}",
            e.job,
            e.to
        );
    }
    // Every submission still ends in a typed terminal state.
    let r = &faulted.report;
    assert_eq!(
        r.completed + r.failed + r.cancelled + r.rejected,
        jobs,
        "outcomes must partition the fleet: {r:?}"
    );
    // Goodput bound: one dead GPU out of four identical nodes costs at
    // most a quarter of the fleet's goodput.
    let share = 1.0 / nodes as f64;
    assert!(
        faulted.report.goodput >= clean.report.goodput - share - 1e-9,
        "goodput fell past the dead node's capacity share: clean {} vs faulted {}",
        clean.report.goodput,
        faulted.report.goodput
    );
}

/// Satellite 3: a breaker trip concurrent with calibration-triggered
/// replanning must neither double-compile a job nor re-admit one that
/// already reached a terminal state — exactly one record per submission,
/// with both mechanisms demonstrably active in the same run.
#[test]
fn breaker_trip_during_replan_neither_double_compiles_nor_readmits() {
    let cfg = MachineConfig::tiny();
    let truth = MachineParams::from_config(&cfg);
    let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * 2.0).min(1.0))
        .expect("skewed gamma stays legal")
        .with_transfer_cost(truth.lambda, truth.delta);
    let jobs = 18;
    let plan = FaultPlan::new(chaos_seed())
        .with_kernel_rate(0.1)
        .with_device_loss_at(120);
    let serve = ServeConfig {
        queue_capacity: jobs,
        assumed: Some(assumed),
        calibration: Some(CalibratorConfig::default()),
        faults: Some(FaultConfig::new(plan)),
        ..ServeConfig::default()
    };
    let out = serve_sim(&cfg, &serve, fleet(jobs, 500.0));

    // No double-compile / no re-admission: ids are unique and cover the
    // fleet exactly once.
    let mut ids: Vec<u64> = out.report.jobs.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        jobs,
        "every submission must produce exactly one record"
    );
    assert_eq!(out.report.jobs.len(), jobs);
    // Both mechanisms really fired in this run.
    assert!(
        out.replans >= 1,
        "a 2x gamma skew with calibration on must replan"
    );
    assert!(
        out.report.breaker_trips >= 1,
        "device loss must trip the breaker"
    );
    // And the fleet still partitions into typed terminal states.
    assert_eq!(
        out.report.completed + out.report.failed + out.report.cancelled + out.report.rejected,
        jobs
    );
}
