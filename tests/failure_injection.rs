//! Failure-injection tests: the stack must degrade with structured errors
//! (never panics or corruption) when the machine or the parameters are
//! hostile.

use hpu::prelude::*;
use hpu_core::exec::Strategy;
use hpu_machine::{GpuConfig, MachineError};

fn tiny_device(mem_bytes: usize) -> MachineConfig {
    let mut cfg = MachineConfig::tiny();
    cfg.gpu = GpuConfig {
        global_mem_bytes: mem_bytes,
        ..cfg.gpu
    };
    cfg
}

#[test]
fn gpu_only_on_undersized_device_reports_oom() {
    // GPU-only needs 2n elements of device memory (ping-pong); give it
    // room for barely one buffer.
    let n = 1 << 10;
    let cfg = tiny_device(n * 4 + 64);
    let mut data: Vec<u32> = (0..n as u32).rev().collect();
    let before = data.clone();
    let mut hpu = SimHpu::new(cfg);
    let err = run_sim(&MergeSort::new(), &mut data, &mut hpu, &Strategy::GpuOnly).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Machine(MachineError::OutOfDeviceMemory { .. })
    ));
    // Input untouched, device memory fully released.
    assert_eq!(data, before);
    assert_eq!(hpu.gpu.allocated_bytes(), 0);
}

#[test]
fn advanced_on_undersized_device_releases_buffers() {
    let n = 1 << 10;
    let cfg = tiny_device(n * 4 + 64);
    let mut data: Vec<u32> = (0..n as u32).rev().collect();
    let mut hpu = SimHpu::new(cfg);
    let err = run_sim(
        &MergeSort::new(),
        &mut data,
        &mut hpu,
        &Strategy::Advanced {
            alpha: 0.1,
            transfer_level: 2,
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CoreError::Machine(MachineError::OutOfDeviceMemory { .. })
    ));
    assert_eq!(hpu.gpu.allocated_bytes(), 0);
    // The machine stays usable: a CPU-only run succeeds afterwards.
    run_sim(&MergeSort::new(), &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn lying_kernel_is_caught_by_bounds_validation() {
    use hpu_core::{BfAlgorithm, Charge, LevelInfo};
    use hpu_machine::{DeviceBuffer, LaunchStats, SimGpu};
    use hpu_model::Recurrence;

    /// An algorithm whose GPU kernel declares an out-of-bounds stream.
    struct Liar;
    impl BfAlgorithm<u32> for Liar {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn base_case(&self, _c: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, _s: &[u32], _d: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
        fn gpu_level(
            &self,
            gpu: &mut SimGpu,
            src: &mut DeviceBuffer<u32>,
            dst: &mut DeviceBuffer<u32>,
            level: &LevelInfo,
        ) -> Result<LaunchStats, MachineError> {
            let len = src.len();
            gpu.launch2("liar", level.tasks, src, dst, move |_, ctx, _, _| {
                ctx.read(0, len, 4, 1); // past the end
            })
        }
    }

    let mut data: Vec<u32> = (0..64).collect();
    let mut hpu = SimHpu::new(MachineConfig::tiny());
    let err = run_sim(&Liar, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Machine(MachineError::OutOfBounds { .. })
    ));
}

#[test]
fn racy_kernel_is_caught_in_strict_mode() {
    use hpu_core::{BfAlgorithm, Charge, LevelInfo};
    use hpu_machine::{DeviceBuffer, LaunchStats, SimGpu};
    use hpu_model::Recurrence;

    /// An algorithm whose GPU work-items all write the same location.
    struct Racy;
    impl BfAlgorithm<u32> for Racy {
        fn name(&self) -> &'static str {
            "racy"
        }
        fn base_case(&self, _c: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn combine(&self, _s: &[u32], _d: &mut [u32], ch: &mut dyn Charge) {
            ch.ops(1);
        }
        fn recurrence(&self) -> Recurrence {
            Recurrence::dc_sum()
        }
        fn gpu_level(
            &self,
            gpu: &mut SimGpu,
            src: &mut DeviceBuffer<u32>,
            dst: &mut DeviceBuffer<u32>,
            level: &LevelInfo,
        ) -> Result<LaunchStats, MachineError> {
            gpu.launch2("racy", level.tasks, src, dst, |_, ctx, _, d| {
                d[0] = 1;
                ctx.write(1, 0, 1, 1);
            })
        }
    }

    // MachineConfig::tiny() has strict mode on.
    let mut data: Vec<u32> = (0..64).collect();
    let mut hpu = SimHpu::new(MachineConfig::tiny());
    let err = run_sim(&Racy, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap_err();
    assert!(matches!(
        err,
        CoreError::Machine(MachineError::WriteOverlap { .. })
    ));
}

#[test]
fn alpha_extremes_are_clamped_not_crashed() {
    // α = 0 and α = 1 cannot leave a side empty: the executor clamps the
    // task split to at least one task per side.
    for alpha in [0.0, 1.0] {
        let mut data: Vec<u32> = (0..256u32).rev().collect();
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let report = run_sim(
            &MergeSort::new(),
            &mut data,
            &mut hpu,
            &Strategy::Advanced {
                alpha,
                transfer_level: 4,
            },
        )
        .unwrap();
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "alpha = {alpha}");
        assert_eq!(report.transfers, 2);
    }
}

#[test]
fn out_of_range_alpha_is_rejected() {
    for alpha in [-0.5, 1.5, f64::INFINITY] {
        let mut data: Vec<u32> = (0..256u32).rev().collect();
        let mut hpu = SimHpu::new(MachineConfig::tiny());
        let err = run_sim(
            &MergeSort::new(),
            &mut data,
            &mut hpu,
            &Strategy::Advanced {
                alpha,
                transfer_level: 4,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::InvalidAlpha { .. }),
            "alpha = {alpha}"
        );
    }
}
