//! Golden virtual-time regressions: exact accounting for tiny runs,
//! derived by hand from the cost model. These pin the simulator's
//! semantics — any change to wave scheduling, coalescing charges, LLC
//! factors or transfer costs shows up here first.

use hpu::prelude::*;
use hpu_core::exec::Strategy;
use hpu_machine::{BusConfig, CpuConfig, GpuConfig};

/// A machine with friendly round numbers: 2 cores, 4 lanes, γ⁻¹ = 10,
/// U = 2, free bus, no cache effects, no launch overhead.
fn round_machine() -> MachineConfig {
    MachineConfig {
        cpu: CpuConfig::uniform(2),
        gpu: GpuConfig {
            lanes: 4,
            gamma_inv: 10.0,
            uncoalesced_penalty: 2.0,
            global_mem_bytes: 1 << 20,
            launch_overhead: 0.0,
            strict: false,
        },
        bus: BusConfig {
            lambda: 100.0,
            delta: 1.0,
        },
    }
}

#[test]
fn sequential_sum_time_is_exact() {
    // DcSum on n = 8, 1 core:
    //   base level: 8 leaves × 1 op             = 8
    //   3 combine levels: (4 + 2 + 1) × (1 op + 3 mem = 4) = 28
    //   odd level count → parity copy back: 16 mem = 16
    //   total                                    = 52
    let mut data: Vec<u64> = (1..=8).collect();
    let mut hpu = SimHpu::new(round_machine());
    let report = run_sim(&DcSum, &mut data, &mut hpu, &Strategy::Sequential).unwrap();
    assert_eq!(report.virtual_time, 52.0);
    assert_eq!(data[0], 36); // and the sum itself
}

#[test]
fn cpu_parallel_sum_time_is_exact() {
    // Same work on 2 cores, rounds of 2:
    //   base: ceil(8/2) = 4 rounds × 1          = 4
    //   combines: (2 + 1 + 1) rounds × 4        = 16
    //   parity copy in 2 chunks of 4 → 1 round × 8 mem = 8
    //   total                                    = 28
    let mut data: Vec<u64> = (1..=8).collect();
    let mut hpu = SimHpu::new(round_machine());
    let report = run_sim(&DcSum, &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
    assert_eq!(report.virtual_time, 28.0);
}

#[test]
fn gpu_only_sum_time_is_exact() {
    // n = 8 on the device (4 lanes, γ⁻¹ = 10), DcSum's custom kernel
    // declares 3 single-element unit-stride streams per item.
    //   upload:  λ + δ·8 = 108
    //   base: 8 items × 1 op → 2 waves × 1 × 10            = 20
    //   level tasks=4 (chunk 2): bases stride 2 → uncoalesced ×2:
    //     1 wave × (1 + 3·2) × 10                           = 70
    //   level tasks=2 (chunk 4): 1 wave × (1 + 3·2) × 10    = 70
    //   level tasks=1 (chunk 8): single-item wave coalesces:
    //     1 wave × (1 + 3·1) × 10                           = 40
    //   download: λ + δ·8                                   = 108
    //   total                                               = 416
    let mut data: Vec<u64> = (1..=8).collect();
    let mut hpu = SimHpu::new(round_machine());
    let report = run_sim(&DcSum, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap();
    assert_eq!(report.virtual_time, 416.0);
    assert_eq!(report.transfers, 2);
    assert_eq!(report.words, 16);
}

#[test]
fn advanced_sum_phases_are_exact() {
    // n = 16, α = 0.5, y = 1: split 8 | 8 at level 1.
    //   upload 8 words: 108 (blocks both clocks)
    //   CPU region (8 elems, 2 cores, to chunk 8):
    //     base 4 rounds + combines (2+1+1) rounds × 4 = 4 + 16 = 20,
    //     plus the odd-parity copy (1 round × 16 mem)  = 36
    //   GPU region (8 elems): levels as in the GPU-only golden test
    //     minus its download: 20 + 70 + 70 + 40 = 200; download 108.
    //   fork: CPU busy 36, GPU busy 200 + 108 = 308 → join at 308.
    //   cleanup (chunk 16, 1 task): 4 on CPU, plus its own parity copy
    //   (one combine level → result in scratch): 2 tasks × 16 mem on 2
    //   cores = 16.
    //   total = 108 + 308 + 4 + 16 = 436.
    let mut data: Vec<u64> = (1..=16).collect();
    let mut hpu = SimHpu::new(round_machine());
    let report = run_sim(
        &DcSum,
        &mut data,
        &mut hpu,
        &Strategy::Advanced {
            alpha: 0.5,
            transfer_level: 1,
        },
    )
    .unwrap();
    assert_eq!(report.virtual_time, 436.0);
    let (cpu_phase, gpu_phase) = report.concurrent.unwrap();
    assert_eq!(cpu_phase, 36.0);
    assert_eq!(gpu_phase, 308.0);
    assert_eq!(data[0], 136);
}

#[test]
fn llc_pressure_is_charged_exactly() {
    // 1 core, LLC of 64 bytes, penalty 3: a DcSum of n = 8 u64 elements
    // declares a footprint of 2·8·8 = 128 bytes = 2× LLC → factor 3.
    //   base: 8 × 1 op (ops unaffected)      = 8
    //   combines: 7 × (1 op + 3 mem × 3)     = 70
    //   parity copy: 16 mem × 3              = 48
    //   total                                 = 126
    let mut cfg = round_machine();
    cfg.cpu = CpuConfig {
        cores: 1,
        llc_bytes: 64,
        llc_miss_penalty: 3.0,
        bw_contention: 0.5, // single core: never charged
    };
    let mut data: Vec<u64> = (1..=8).collect();
    let mut hpu = SimHpu::new(cfg);
    let report = run_sim(&DcSum, &mut data, &mut hpu, &Strategy::Sequential).unwrap();
    assert_eq!(report.virtual_time, 126.0);
}

#[test]
fn launch_overhead_is_charged_once_per_launch() {
    let mut cfg = round_machine();
    cfg.gpu.launch_overhead = 1000.0;
    cfg.bus = BusConfig {
        lambda: 0.0,
        delta: 0.0,
    };
    // GPU-only DcSum on n = 8: 4 launches (base + 3 combine levels)
    // → 416 − 2·108 (bus now free) + 4·1000 = 4200.
    let mut data: Vec<u64> = (1..=8).collect();
    let mut hpu = SimHpu::new(cfg);
    let report = run_sim(&DcSum, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap();
    assert_eq!(report.virtual_time, 4200.0);
}
