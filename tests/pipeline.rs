//! End-to-end integration tests spanning all crates: estimate → model →
//! schedule → execute → verify, on multiple algorithms.

use hpu::prelude::*;
use hpu_algos::max_subarray::{max_subarray_reference, to_segments, MaxSubarray};
use hpu_algos::mergesort::{gpu_parallel_mergesort, sort_recursive};
use hpu_algos::scan::{scan_reference, DcScan};
use hpu_model::advanced::AdvancedSolver;

fn keys(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) ^ 0x9E37)
        .collect()
}

#[test]
fn estimate_model_schedule_execute() {
    let cfg = MachineConfig::hpu1_sim();

    // 1. Estimation recovers the platform parameters.
    let params = estimate_params(&cfg);
    assert_eq!(params.p, 4);
    assert_eq!(params.g, 4096);
    assert!((1.0 / params.gamma - 160.0).abs() < 2.0);

    // 2. The model tunes a schedule from those estimates.
    let n = 1 << 14;
    let algo = MergeSort::new();
    let rec = BfAlgorithm::<u32>::recurrence(&algo);
    let solver = AdvancedSolver::new(&params, &rec, n as u64).unwrap();
    let opt = solver.optimize();
    assert!(opt.alpha > 0.0 && opt.alpha < 1.0);

    // 3. The schedule executes correctly with exactly two transfers.
    let strategy = Strategy::Advanced {
        alpha: opt.alpha,
        transfer_level: (opt.transfer_level.round() as u32).clamp(1, 14),
    };
    let mut data = keys(n);
    let mut expect = data.clone();
    expect.sort_unstable();
    let mut hpu = SimHpu::new(cfg);
    let report = run_sim(&algo, &mut data, &mut hpu, &strategy).unwrap();
    assert!(data == expect);
    assert_eq!(report.transfers, 2);

    // 4. The concurrent phase used both units.
    let (cpu_phase, gpu_phase) = report.concurrent.expect("advanced run records phases");
    assert!(cpu_phase > 0.0 && gpu_phase > 0.0);
}

#[test]
fn auto_strategy_picks_hybrid_on_strong_gpu_and_cpu_on_weak() {
    let rec = BfAlgorithm::<u32>::recurrence(&MergeSort::new());
    let strong = MachineConfig::hpu1_sim();
    assert!(matches!(
        auto_strategy(&strong, &rec, 1 << 20),
        Strategy::Advanced { .. }
    ));
    let mut weak = MachineConfig::hpu1_sim();
    weak.gpu.lanes = 8; // γ·g = 0.05 < p
    assert!(matches!(
        auto_strategy(&weak, &rec, 1 << 20),
        Strategy::CpuOnly
    ));
}

#[test]
fn virtual_times_are_deterministic() {
    let n = 1 << 12;
    let strategy = Strategy::Advanced {
        alpha: 0.2,
        transfer_level: 6,
    };
    let mut times = Vec::new();
    for _ in 0..3 {
        let mut data = keys(n);
        let mut hpu = SimHpu::new(MachineConfig::hpu2_sim());
        let report = run_sim(&MergeSort::new(), &mut data, &mut hpu, &strategy).unwrap();
        times.push(report.virtual_time);
    }
    assert_eq!(times[0], times[1]);
    assert_eq!(times[1], times[2]);
}

#[test]
fn timeline_is_consistent_with_report() {
    let n = 1 << 10;
    let mut data = keys(n);
    let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
    let report = run_sim(
        &MergeSort::new(),
        &mut data,
        &mut hpu,
        &Strategy::Basic { crossover: None },
    )
    .unwrap();
    let tl = hpu.timeline();
    // The makespan of logged events matches the elapsed clock.
    assert!((tl.makespan() - report.virtual_time).abs() < 1e-6);
    // Two bus events for the single round trip.
    let bus_events = tl
        .events()
        .iter()
        .filter(|e| e.unit == hpu::machine::Unit::Bus)
        .count();
    assert_eq!(bus_events, 2);
    // CPU busy core-time never exceeds p × makespan.
    assert!(report.cpu_busy <= 4.0 * tl.makespan() + 1e-6);
}

#[test]
fn multiple_algorithms_share_one_machine() {
    // Runs accumulate on one machine's clocks without interfering with
    // correctness.
    let mut hpu = SimHpu::new(MachineConfig::hpu2_sim());
    let mut data = keys(1 << 10);
    run_sim(&MergeSort::new(), &mut data, &mut hpu, &Strategy::CpuOnly).unwrap();
    let t1 = hpu.elapsed();

    let mut nums: Vec<u64> = (0..1024).map(|i| i * 3 + 1).collect();
    let expect: u64 = nums.iter().sum();
    run_sim(&DcSum, &mut nums, &mut hpu, &Strategy::GpuOnly).unwrap();
    assert_eq!(nums[0], expect);
    assert!(hpu.elapsed() > t1, "clock advances monotonically");
}

#[test]
fn scan_and_max_subarray_full_pipeline() {
    let cfg = MachineConfig::hpu2_sim();
    // Scan via the tuned strategy.
    let vals: Vec<u64> = (0..1 << 12).map(|i| (i % 91) as u64).collect();
    let expect = scan_reference(&vals);
    let rec = BfAlgorithm::<u64>::recurrence(&DcScan);
    let strategy = auto_advanced(&cfg, &rec, vals.len() as u64).unwrap();
    let mut data = vals.clone();
    let mut hpu = SimHpu::new(cfg.clone());
    run_sim(&DcScan, &mut data, &mut hpu, &strategy).unwrap();
    assert!(data == expect);

    // Max-subarray on the basic schedule.
    let raw: Vec<i64> = (0..1 << 12).map(|i| ((i * 29) % 41) - 20).collect();
    let mut segs = to_segments(&raw);
    let mut hpu = SimHpu::new(cfg);
    run_sim(
        &MaxSubarray,
        &mut segs,
        &mut hpu,
        &Strategy::Basic { crossover: None },
    )
    .unwrap();
    assert_eq!(segs[0].best, max_subarray_reference(&raw));
}

#[test]
fn gpu_parallel_sort_agrees_with_recursive_reference() {
    let n = 1 << 12;
    let mut reference = keys(n);
    sort_recursive(&mut reference);

    let mut data = keys(n);
    let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
    let report = gpu_parallel_mergesort(&mut hpu, &mut data).unwrap();
    assert!(data == reference);
    assert!(report.sort_time > 0.0);
    assert_eq!(hpu.bus.transfers(), 2);
}

#[test]
fn native_and_simulated_agree() {
    let n = 1 << 12;
    let pool = LevelPool::new(2);
    let mut native = keys(n);
    run_native(&MergeSort::new(), &mut native, &pool).unwrap();

    let mut sim = keys(n);
    let mut hpu = SimHpu::new(MachineConfig::tiny());
    run_sim(&MergeSort::new(), &mut sim, &mut hpu, &Strategy::CpuOnly).unwrap();
    assert!(native == sim);
}

#[test]
fn run_reports_expose_coalescing_benefit() {
    let n = 1 << 12;
    let run = |algo: MergeSort| {
        let mut data = keys(n);
        let mut hpu = SimHpu::new(MachineConfig::hpu1_sim());
        run_sim(&algo, &mut data, &mut hpu, &Strategy::GpuOnly).unwrap()
    };
    let co = run(MergeSort::new());
    let ge = run(MergeSort::generic());
    assert!(co.virtual_time < ge.virtual_time);
    assert!(co.coalesced > 0);
    assert_eq!(ge.coalesced, 0);
}
