//! Property-based tests (proptest) over the whole stack: executors must
//! agree with sequential references on arbitrary inputs, and the model's
//! solutions must satisfy their analytic invariants.
//!
//! Gated behind the off-by-default `proptest` cargo feature because this
//! workspace must build with zero external crates (offline container); see
//! the feature's note in the root `Cargo.toml`. `tests/randomized.rs`
//! covers the same properties with an in-repo deterministic PRNG and
//! always runs.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use hpu::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate ours.
use hpu_algos::max_subarray::{max_subarray_reference, to_segments, MaxSubarray};
use hpu_algos::mergesort::gpu_parallel_mergesort;
use hpu_algos::scan::{scan_reference, DcScan};
use hpu_algos::sum::DcSum;
use hpu_core::exec::{RecoveryPolicy, Strategy as Sched};
use hpu_machine::FaultPlan;
use hpu_model::advanced::AdvancedSolver;
use hpu_model::ScheduleSpec;
use hpu_obs::JobOutcome;
use hpu_serve::{
    dispatch_order, serve_sim, AlgoJob, DeviceArbiter, FaultConfig, JobRequest, Policy, Rank,
    ServeConfig,
};

/// Pads to the next power of two with `u32::MAX` sentinels (sorted to the
/// end), the standard trick for the framework's power-of-two requirement.
fn pad_pow2(mut v: Vec<u32>) -> Vec<u32> {
    let n = v.len().max(1).next_power_of_two();
    v.resize(n, u32::MAX);
    v
}

fn small_machine() -> MachineConfig {
    MachineConfig::tiny()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mergesort_all_strategies_match_std_sort(
        input in prop::collection::vec(any::<u32>(), 1..700),
        alpha in 0.05f64..0.95,
    ) {
        let data = pad_pow2(input);
        let mut expect = data.clone();
        expect.sort_unstable();
        let levels = data.len().trailing_zeros();

        let mut strategies = vec![
            Sched::Sequential,
            Sched::CpuOnly,
            Sched::GpuOnly,
            Sched::Basic { crossover: None },
        ];
        if levels >= 1 {
            strategies.push(Sched::Advanced {
                alpha,
                transfer_level: (levels / 2).max(1),
            });
        }
        for strategy in strategies {
            let mut d = data.clone();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&MergeSort::new(), &mut d, &mut hpu, &strategy).unwrap();
            prop_assert_eq!(&d, &expect);
        }
    }

    #[test]
    fn coalesced_and_generic_gpu_agree(input in prop::collection::vec(any::<u32>(), 1..500)) {
        let data = pad_pow2(input);
        let mut a = data.clone();
        let mut b = data;
        let mut h1 = SimHpu::new(small_machine());
        let mut h2 = SimHpu::new(small_machine());
        run_sim(&MergeSort::new(), &mut a, &mut h1, &Sched::GpuOnly).unwrap();
        run_sim(&MergeSort::generic(), &mut b, &mut h2, &Sched::GpuOnly).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gpu_parallel_mergesort_matches_std(input in prop::collection::vec(any::<u32>(), 1..600)) {
        let data = pad_pow2(input);
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut d = data;
        let mut hpu = SimHpu::new(small_machine());
        gpu_parallel_mergesort(&mut hpu, &mut d).unwrap();
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn cutoff_mergesort_matches_std(
        input in prop::collection::vec(any::<u32>(), 1..500),
        cutoff_log in 0u32..5,
    ) {
        let mut data = pad_pow2(input);
        let cutoff = (1usize << cutoff_log).min(data.len());
        let mut expect = data.clone();
        expect.sort_unstable();
        let algo = MergeSort::new().with_leaf_cutoff(cutoff);
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&algo, &mut data, &mut hpu, &Sched::GpuOnly).unwrap();
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn sum_matches_iter_sum(input in prop::collection::vec(any::<u32>(), 1..600)) {
        let mut data: Vec<u64> = input.iter().map(|&x| x as u64).collect();
        let n = data.len().max(1).next_power_of_two();
        data.resize(n, 0);
        let expect: u64 = data.iter().sum();
        for strategy in [Sched::CpuOnly, Sched::GpuOnly] {
            let mut d = data.clone();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&DcSum, &mut d, &mut hpu, &strategy).unwrap();
            prop_assert_eq!(d[0], expect);
        }
    }

    #[test]
    fn scan_matches_reference(input in prop::collection::vec(0u64..1_000_000, 1..400)) {
        let mut data = input;
        let n = data.len().max(1).next_power_of_two();
        data.resize(n, 0);
        let expect = scan_reference(&data);
        let mut d = data;
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&DcScan, &mut d, &mut hpu, &Sched::CpuOnly).unwrap();
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn max_subarray_matches_kadane(input in prop::collection::vec(-1000i64..1000, 1..300)) {
        let mut padded = input.clone();
        let n = padded.len().max(1).next_power_of_two();
        padded.resize(n, 0); // zero padding does not change the optimum
        let mut segs = to_segments(&padded);
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&MaxSubarray, &mut segs, &mut hpu, &Sched::CpuOnly).unwrap();
        prop_assert_eq!(segs[0].best, max_subarray_reference(&input));
    }

    #[test]
    fn model_y_is_monotone_and_times_equalize(
        n_log in 8u32..24,
        g_log in 4u32..13,
        gamma_inv in 2.0f64..300.0,
    ) {
        let machine = MachineParams::new(4, 1 << g_log, 1.0 / gamma_inv).unwrap();
        prop_assume!(machine.gpu_worth_using());
        let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << n_log).unwrap();
        let mut prev_y = f64::INFINITY;
        for k in 1..10 {
            let alpha = k as f64 * 0.1;
            let sol = solver.solve_y(alpha);
            if sol.feasible {
                // y non-increasing in alpha.
                prop_assert!(sol.y <= prev_y + 1e-9);
                prev_y = sol.y;
                // At an interior solution the two times are equal.
                if sol.y > 1e-9 && sol.y < (n_log as f64) - 1e-9 {
                    let tg = solver.tg(alpha, sol.y);
                    prop_assert!((tg - sol.tc).abs() <= 1e-6 * sol.tc.max(1.0));
                }
            }
        }
    }

    #[test]
    fn model_optimum_dominates_grid(
        n_log in 10u32..22,
        g_log in 6u32..13,
    ) {
        let machine = MachineParams::new(4, 1 << g_log, 1.0 / 100.0).unwrap();
        prop_assume!(machine.gpu_worth_using());
        let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << n_log).unwrap();
        let best = solver.optimize();
        for k in 1..20 {
            let alpha = k as f64 * 0.05;
            if let Some(w) = solver.gpu_work_at(alpha) {
                prop_assert!(best.gpu_work >= w - 1e-6 * w.abs());
            }
        }
    }

    #[test]
    fn pool_preserves_task_order(tasks in prop::collection::vec(any::<u16>(), 0..200)) {
        let pool = LevelPool::new(3);
        let jobs: Vec<_> = tasks.iter().map(|&v| move || v as u32 + 1).collect();
        let out = pool.run_collect(jobs);
        let expect: Vec<u32> = tasks.iter().map(|&v| v as u32 + 1).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn zero_starvation_bound_degrades_to_exact_fifo(
        ranks in prop::collection::vec((0.0f64..100.0, 0usize..6), 0..40)
            .prop_map(|v| {
                v.into_iter()
                    .enumerate()
                    .map(|(i, (cost, skips))| Rank { seq: i as u64, cost, skips })
                    .collect::<Vec<_>>()
            })
            .prop_shuffle(),
    ) {
        // With a zero starvation bound every queued job is overdue at
        // once, so shortest-cost ordering collapses to arrival order with
        // a fully rigid prefix — byte-for-byte FIFO.
        let fifo = dispatch_order(&Policy::Fifo, &ranks);
        let zero = dispatch_order(&Policy::ShortestCost { starvation_bound: 0 }, &ranks);
        prop_assert_eq!(fifo.0, zero.0);
        prop_assert_eq!(fifo.1, zero.1);
        prop_assert_eq!(zero.1, ranks.len());
    }

    #[test]
    fn arbiter_probes_and_commits_agree(
        cores in 1usize..8,
        requests in prop::collection::vec(
            (0u8..3, 0.0f64..100.0, 0.0f64..10.0, 0.0f64..10.0, 1usize..10),
            1..40,
        ),
    ) {
        let mut arb = DeviceArbiter::new(cores);
        for (kind, t, dur_a, dur_b, req) in requests {
            match kind {
                0 => {
                    let probe = arb.gpu_slot(t, dur_a);
                    let (s, e) = arb.reserve_gpu(t, dur_a);
                    prop_assert_eq!(s, probe);
                    prop_assert!((e - (s + dur_a)).abs() <= 1e-9);
                    prop_assert!(s >= t);
                }
                1 => {
                    let probe = arb.cpu_slot(t, dur_a, req);
                    let (s, e) = arb.reserve_cpu(t, dur_a, req);
                    prop_assert_eq!(s, probe);
                    prop_assert!((e - (s + dur_a)).abs() <= 1e-9);
                    prop_assert!(s >= t);
                }
                _ => {
                    // Completing at all is the termination property of the
                    // pair probe's alternating fixed-point search.
                    let probe = arb.pair_slot(t, dur_a, req, dur_b);
                    let (s, e) = arb.reserve_pair(t, dur_a, req, dur_b);
                    prop_assert_eq!(s, probe);
                    prop_assert!((e - (s + dur_a.max(dur_b))).abs() <= 1e-9);
                    prop_assert!(s >= t);
                }
            }
        }
        // The placements the probes promised must also be legal: GPU
        // leases pairwise disjoint, CPU pool never oversubscribed.
        for w in arb.gpu_leases().windows(2) {
            prop_assert!(w[0].1 <= w[1].0 + 1e-9);
        }
        for &(s, _, _) in arb.cpu_reservations() {
            let used: usize = arb
                .cpu_reservations()
                .iter()
                .filter(|&&(s2, e2, _)| s2 <= s + 1e-9 && s + 1e-9 < e2)
                .map(|&(_, _, k)| k)
                .sum();
            prop_assert!(used <= cores, "{used} cores used of {cores} at {s}");
        }
    }

    #[test]
    fn recovery_backoff_is_monotone_capped_and_pure(
        max_retries in 0u32..8,
        base in 0.0f64..1000.0,
        factor in 1.0f64..4.0,
        cap in 0.0f64..1.0e6,
    ) {
        // For any policy with a growth factor ≥ 1, `backoff_at` is
        // non-decreasing in the attempt index, never exceeds
        // `max_backoff`, stays finite whenever the cap is (even where
        // `factor^attempt` overflows to ∞), and is a pure function of
        // the policy — equal inputs give bit-equal backoffs.
        let policy = RecoveryPolicy {
            max_retries,
            backoff_base: base,
            backoff_factor: factor,
            max_backoff: cap,
        };
        let mut prev = 0.0_f64;
        for attempt in 0..256u32 {
            let b = policy.backoff_at(attempt);
            prop_assert!(b.is_finite(), "finite under a finite cap");
            prop_assert!(b <= cap, "{b} exceeds cap {cap}");
            prop_assert!(
                b >= prev * (1.0 - 1e-12) - 1e-12,
                "backoff shrank {prev} -> {b} at attempt {attempt}"
            );
            prop_assert_eq!(b.to_bits(), policy.backoff_at(attempt).to_bits());
            prev = b;
        }
    }

    #[test]
    fn serving_under_faults_accounts_for_every_job(
        jobs in 2usize..8,
        kernel in 0.0f64..0.5,
        transfer in 0.0f64..0.3,
        loss in prop::option::of(5u64..60),
        seed in any::<u64>(),
    ) {
        // Whatever faults are injected — transient kernel/transfer faults
        // at arbitrary rates, optionally a permanent device loss — the
        // scheduler must account for every submission exactly once with a
        // typed terminal state, and a transient-only plan must lose no
        // job at all (retries or CPU-only degradation absorb everything).
        let mut plan = FaultPlan::new(seed)
            .with_kernel_rate(kernel)
            .with_transfer_rate(transfer);
        if let Some(at) = loss {
            plan = plan.with_device_loss_at(at);
        }
        let transient_only = plan.is_transient_only();
        let serve = ServeConfig {
            queue_capacity: jobs,
            faults: Some(FaultConfig::new(plan)),
            ..ServeConfig::default()
        };
        let fleet: Vec<JobRequest> = (0..jobs)
            .map(|i| {
                let n = 256usize << (i % 2);
                let spec = match i % 3 {
                    0 => ScheduleSpec::Basic { crossover: Some(4) },
                    1 => ScheduleSpec::GpuOnly,
                    _ => ScheduleSpec::CpuParallel,
                };
                let data: Vec<u32> = (0..n as u32).rev().collect();
                JobRequest::new(
                    format!("sort-{i}"),
                    spec,
                    i as f64 * 500.0,
                    AlgoJob::boxed(MergeSort::new(), data),
                )
            })
            .collect();
        let out = serve_sim(&small_machine(), &serve, fleet);
        let mut ids: Vec<u64> = out.report.jobs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), jobs, "one record per submission");
        for r in &out.report.jobs {
            prop_assert!(matches!(
                r.outcome,
                JobOutcome::Completed | JobOutcome::Failed { .. } | JobOutcome::Cancelled
            ));
        }
        let r = &out.report;
        prop_assert_eq!(r.completed + r.failed + r.cancelled + r.rejected, jobs);
        if transient_only {
            prop_assert_eq!(r.completed, jobs, "transient-only faults must lose no job");
        }
    }

    #[test]
    fn one_node_fleet_is_observationally_identical_to_serve_sim(
        jobs in 2usize..10,
        arrivals in prop::collection::vec(0.0f64..4000.0, 10),
        gamma_error in 1.2f64..3.0,
    ) {
        use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, RouterPolicy};
        use hpu_machine::SimMachineParams;
        use hpu_model::CalibratorConfig;

        // A 1-node fleet under the trivial round-robin router IS plain
        // `serve_sim`: same outcomes, latencies, device leases and
        // calibration generations. The node's beliefs are mis-specified
        // by an arbitrary gamma factor with the calibration loop on, so
        // the property also covers drift-triggered replans.
        let shapes: Vec<(ScheduleSpec, usize, f64)> = (0..jobs)
            .map(|i| {
                let spec = match i % 3 {
                    0 => ScheduleSpec::Basic { crossover: Some(4) },
                    1 => ScheduleSpec::GpuOnly,
                    _ => ScheduleSpec::CpuParallel,
                };
                (spec, 256usize << (i % 2), arrivals[i % arrivals.len()])
            })
            .collect();
        let machine = small_machine();
        let truth = MachineParams::from_config(&machine);
        let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * gamma_error).min(1.0))
            .unwrap()
            .with_transfer_cost(truth.lambda, truth.delta);
        let serve = ServeConfig {
            queue_capacity: jobs,
            assumed: Some(assumed),
            calibration: Some(CalibratorConfig::default()),
            ..ServeConfig::default()
        };
        let data = |n: usize| -> Vec<u32> { (0..n as u32).rev().collect() };

        let solo: Vec<JobRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, (spec, n, at))| {
                JobRequest::new(
                    format!("j{i}"),
                    spec.clone(),
                    *at,
                    AlgoJob::boxed(MergeSort::new(), data(*n)),
                )
            })
            .collect();
        let a = serve_sim(&machine, &serve, solo);

        let mut cfg = FleetConfig::new(vec![
            NodeSpec::new("solo", machine.clone()).with_serve(serve.clone()),
        ]);
        cfg.router = RouterPolicy::RoundRobin;
        let fleet_jobs: Vec<FleetJobRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, (spec, n, at))| {
                FleetJobRequest::new(
                    format!("j{i}"),
                    spec.clone(),
                    *at,
                    AlgoJob::boxed(MergeSort::new(), data(*n)),
                )
            })
            .collect();
        let b = fleet_sim(&cfg, fleet_jobs);

        prop_assert!(b.steals.is_empty(), "1 node cannot steal");
        let node = &b.nodes[0];
        prop_assert_eq!(&a.report, &node.report);
        prop_assert_eq!(a.replans, node.replans);
        prop_assert_eq!(&a.calibration, &node.calibration);
        prop_assert_eq!(&a.gpu_leases, &node.gpu_leases);
        prop_assert_eq!(&a.cpu_reservations, &node.cpu_reservations);
        prop_assert_eq!(b.report.completed, a.report.completed);
    }

    #[test]
    fn virtual_time_scales_with_work(n_log in 6u32..11) {
        // Doubling the input must not shrink virtual time, whatever the
        // strategy.
        let run_at = |n: usize| {
            let mut data: Vec<u32> = (0..n as u32).rev().collect();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&MergeSort::new(), &mut data, &mut hpu, &Sched::CpuOnly)
                .unwrap()
                .virtual_time
        };
        let t1 = run_at(1 << n_log);
        let t2 = run_at(1 << (n_log + 1));
        prop_assert!(t2 > t1);
    }
}
