//! Randomized whole-stack tests: the always-on, dependency-free port of
//! `tests/properties.rs` (which needs the external `proptest` crate and is
//! gated behind the off-by-default `proptest` feature). A deterministic
//! in-repo splitmix64 PRNG drives a fixed set of seeds, so failures
//! reproduce exactly.

use hpu::prelude::*;
use hpu_algos::max_subarray::{max_subarray_reference, to_segments, MaxSubarray};
use hpu_algos::mergesort::gpu_parallel_mergesort;
use hpu_algos::scan::{scan_reference, DcScan};
use hpu_core::exec::{RecoveryPolicy, Strategy as Sched};
use hpu_machine::FaultPlan;
use hpu_model::advanced::AdvancedSolver;
use hpu_model::ScheduleSpec;
use hpu_obs::JobOutcome;
use hpu_serve::{
    dispatch_order, serve_sim, AlgoJob, DeviceArbiter, FaultConfig, JobRequest, Policy, Rank,
    ServeConfig,
};

/// splitmix64 — same finalizer as `hpu_bench::SplitMix64`, inlined here so
/// the root test suite does not depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn vec_u32(&mut self, len: usize) -> Vec<u32> {
        (0..len).map(|_| self.next_u64() as u32).collect()
    }
}

/// Pads to the next power of two with `u32::MAX` sentinels (sorted to the
/// end), the standard trick for the framework's power-of-two requirement.
fn pad_pow2(mut v: Vec<u32>) -> Vec<u32> {
    let n = v.len().max(1).next_power_of_two();
    v.resize(n, u32::MAX);
    v
}

fn small_machine() -> MachineConfig {
    MachineConfig::tiny()
}

const SEEDS: [u64; 6] = [1, 7, 42, 1234567, 0xDEAD_BEEF, u64::MAX - 3];

#[test]
fn mergesort_all_strategies_match_std_sort() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(699) as usize;
        let alpha = 0.05 + 0.9 * (rng.below(1000) as f64 / 1000.0);
        let data = pad_pow2(rng.vec_u32(len));
        let mut expect = data.clone();
        expect.sort_unstable();
        let levels = data.len().trailing_zeros();

        let mut strategies = vec![
            Sched::Sequential,
            Sched::CpuOnly,
            Sched::GpuOnly,
            Sched::Basic { crossover: None },
        ];
        if levels >= 1 {
            strategies.push(Sched::Advanced {
                alpha,
                transfer_level: (levels / 2).max(1),
            });
        }
        for strategy in strategies {
            let mut d = data.clone();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&MergeSort::new(), &mut d, &mut hpu, &strategy).unwrap();
            assert_eq!(d, expect, "seed {seed}, strategy {strategy:?}");
        }
    }
}

#[test]
fn coalesced_and_generic_gpu_agree() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(499) as usize;
        let data = pad_pow2(rng.vec_u32(len));
        let mut a = data.clone();
        let mut b = data;
        let mut h1 = SimHpu::new(small_machine());
        let mut h2 = SimHpu::new(small_machine());
        run_sim(&MergeSort::new(), &mut a, &mut h1, &Sched::GpuOnly).unwrap();
        run_sim(&MergeSort::generic(), &mut b, &mut h2, &Sched::GpuOnly).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn gpu_parallel_mergesort_matches_std() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(599) as usize;
        let data = pad_pow2(rng.vec_u32(len));
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut d = data;
        let mut hpu = SimHpu::new(small_machine());
        gpu_parallel_mergesort(&mut hpu, &mut d).unwrap();
        assert_eq!(d, expect, "seed {seed}");
    }
}

#[test]
fn cutoff_mergesort_matches_std() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(499) as usize;
        let mut data = pad_pow2(rng.vec_u32(len));
        let cutoff = (1usize << rng.below(5)).min(data.len());
        let mut expect = data.clone();
        expect.sort_unstable();
        let algo = MergeSort::new().with_leaf_cutoff(cutoff);
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&algo, &mut data, &mut hpu, &Sched::GpuOnly).unwrap();
        assert_eq!(data, expect, "seed {seed}, cutoff {cutoff}");
    }
}

#[test]
fn sum_matches_iter_sum() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(599) as usize;
        let mut data: Vec<u64> = (0..len).map(|_| rng.next_u64() as u32 as u64).collect();
        let n = data.len().next_power_of_two();
        data.resize(n, 0);
        let expect: u64 = data.iter().sum();
        for strategy in [Sched::CpuOnly, Sched::GpuOnly] {
            let mut d = data.clone();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&DcSum, &mut d, &mut hpu, &strategy).unwrap();
            assert_eq!(d[0], expect, "seed {seed}, strategy {strategy:?}");
        }
    }
}

#[test]
fn scan_matches_reference() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(399) as usize;
        let mut data: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
        let n = data.len().next_power_of_two();
        data.resize(n, 0);
        let expect = scan_reference(&data);
        let mut d = data;
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&DcScan, &mut d, &mut hpu, &Sched::CpuOnly).unwrap();
        assert_eq!(d, expect, "seed {seed}");
    }
}

#[test]
fn max_subarray_matches_kadane() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = 1 + rng.below(299) as usize;
        let input: Vec<i64> = (0..len).map(|_| rng.below(2000) as i64 - 1000).collect();
        let mut padded = input.clone();
        let n = padded.len().next_power_of_two();
        padded.resize(n, 0); // zero padding does not change the optimum
        let mut segs = to_segments(&padded);
        let mut hpu = SimHpu::new(small_machine());
        run_sim(&MaxSubarray, &mut segs, &mut hpu, &Sched::CpuOnly).unwrap();
        assert_eq!(segs[0].best, max_subarray_reference(&input), "seed {seed}");
    }
}

#[test]
fn model_y_is_monotone_and_times_equalize() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let n_log = 8 + rng.below(16) as u32;
        let g_log = 4 + rng.below(9) as u32;
        let gamma_inv = 2.0 + 298.0 * (rng.below(1000) as f64 / 1000.0);
        let machine = MachineParams::new(4, 1 << g_log, 1.0 / gamma_inv).unwrap();
        if !machine.gpu_worth_using() {
            continue;
        }
        let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << n_log).unwrap();
        let mut prev_y = f64::INFINITY;
        for k in 1..10 {
            let alpha = k as f64 * 0.1;
            let sol = solver.solve_y(alpha);
            if sol.feasible {
                // y non-increasing in alpha.
                assert!(sol.y <= prev_y + 1e-9, "seed {seed}, alpha {alpha}");
                prev_y = sol.y;
                // At an interior solution the two times are equal.
                if sol.y > 1e-9 && sol.y < (n_log as f64) - 1e-9 {
                    let tg = solver.tg(alpha, sol.y);
                    assert!(
                        (tg - sol.tc).abs() <= 1e-6 * sol.tc.max(1.0),
                        "seed {seed}, alpha {alpha}"
                    );
                }
            }
        }
    }
}

#[test]
fn model_optimum_dominates_grid() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let n_log = 10 + rng.below(12) as u32;
        let g_log = 6 + rng.below(7) as u32;
        let machine = MachineParams::new(4, 1 << g_log, 1.0 / 100.0).unwrap();
        if !machine.gpu_worth_using() {
            continue;
        }
        let solver = AdvancedSolver::new(&machine, &Recurrence::mergesort(), 1 << n_log).unwrap();
        let best = solver.optimize();
        for k in 1..20 {
            let alpha = k as f64 * 0.05;
            if let Some(w) = solver.gpu_work_at(alpha) {
                assert!(
                    best.gpu_work >= w - 1e-6 * w.abs(),
                    "seed {seed}, alpha {alpha}"
                );
            }
        }
    }
}

#[test]
fn pool_preserves_task_order() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = rng.below(200) as usize;
        let tasks: Vec<u16> = (0..len).map(|_| rng.next_u64() as u16).collect();
        let pool = LevelPool::new(3);
        let jobs: Vec<_> = tasks.iter().map(|&v| move || v as u32 + 1).collect();
        let out = pool.run_collect(jobs);
        let expect: Vec<u32> = tasks.iter().map(|&v| v as u32 + 1).collect();
        assert_eq!(out, expect, "seed {seed}");
    }
}

#[test]
fn zero_starvation_bound_degrades_to_exact_fifo() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let len = rng.below(40) as usize;
        let mut ranks: Vec<Rank> = (0..len)
            .map(|i| Rank {
                seq: i as u64,
                cost: rng.below(1000) as f64 / 10.0,
                skips: rng.below(6) as usize,
            })
            .collect();
        // Fisher-Yates so arrival order and queue position disagree.
        for i in (1..ranks.len()).rev() {
            ranks.swap(i, rng.below(i as u64 + 1) as usize);
        }
        // With a zero starvation bound every queued job is overdue at
        // once, so shortest-cost ordering collapses to arrival order with
        // a fully rigid prefix — byte-for-byte FIFO.
        let fifo = dispatch_order(&Policy::Fifo, &ranks);
        let zero = dispatch_order(
            &Policy::ShortestCost {
                starvation_bound: 0,
            },
            &ranks,
        );
        assert_eq!(fifo, zero, "seed {seed}");
        assert_eq!(zero.1, ranks.len(), "seed {seed}");
    }
}

#[test]
fn arbiter_probes_and_commits_agree() {
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let cores = 1 + rng.below(7) as usize;
        let mut arb = DeviceArbiter::new(cores);
        for step in 0..40 {
            let t = rng.below(1000) as f64 / 10.0;
            let dur_a = rng.below(100) as f64 / 10.0;
            let dur_b = rng.below(100) as f64 / 10.0;
            let req = 1 + rng.below(9) as usize;
            let ctx = format!("seed {seed}, step {step}");
            match rng.below(3) {
                0 => {
                    let probe = arb.gpu_slot(t, dur_a);
                    let (s, e) = arb.reserve_gpu(t, dur_a);
                    assert_eq!(s, probe, "{ctx}");
                    assert!((e - (s + dur_a)).abs() <= 1e-9, "{ctx}");
                    assert!(s >= t, "{ctx}");
                }
                1 => {
                    let probe = arb.cpu_slot(t, dur_a, req);
                    let (s, e) = arb.reserve_cpu(t, dur_a, req);
                    assert_eq!(s, probe, "{ctx}");
                    assert!((e - (s + dur_a)).abs() <= 1e-9, "{ctx}");
                    assert!(s >= t, "{ctx}");
                }
                _ => {
                    // Completing at all is the termination property of the
                    // pair probe's alternating fixed-point search.
                    let probe = arb.pair_slot(t, dur_a, req, dur_b);
                    let (s, e) = arb.reserve_pair(t, dur_a, req, dur_b);
                    assert_eq!(s, probe, "{ctx}");
                    assert!((e - (s + dur_a.max(dur_b))).abs() <= 1e-9, "{ctx}");
                    assert!(s >= t, "{ctx}");
                }
            }
        }
        // The placements the probes promised must also be legal: GPU
        // leases pairwise disjoint, CPU pool never oversubscribed.
        for w in arb.gpu_leases().windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-9, "seed {seed}: {w:?}");
        }
        for &(s, _, _) in arb.cpu_reservations() {
            let used: usize = arb
                .cpu_reservations()
                .iter()
                .filter(|&&(s2, e2, _)| s2 <= s + 1e-9 && s + 1e-9 < e2)
                .map(|&(_, _, k)| k)
                .sum();
            assert!(
                used <= cores,
                "seed {seed}: {used} cores used of {cores} at {s}"
            );
        }
    }
}

#[test]
fn recovery_backoff_is_monotone_capped_and_pure() {
    // Mirror of the proptest property: for any policy with a growth
    // factor ≥ 1, `backoff_at` is non-decreasing in the attempt index,
    // never exceeds `max_backoff`, stays finite whenever the cap is
    // (even where `factor^attempt` overflows to ∞), and is a pure
    // function of the policy — equal inputs give bit-equal backoffs.
    for seed in SEEDS {
        let mut rng = Rng(seed);
        for _ in 0..40 {
            let policy = RecoveryPolicy {
                max_retries: rng.below(8) as u32,
                backoff_base: rng.below(10_000) as f64 / 10.0,
                backoff_factor: 1.0 + rng.below(300) as f64 / 100.0,
                max_backoff: rng.below(1_000_000) as f64,
            };
            let mut prev = 0.0_f64;
            for attempt in 0..256u32 {
                let b = policy.backoff_at(attempt);
                assert!(b.is_finite(), "seed {seed}: finite under a finite cap");
                assert!(
                    b <= policy.max_backoff,
                    "seed {seed}: {b} exceeds cap {}",
                    policy.max_backoff
                );
                assert!(
                    b >= prev * (1.0 - 1e-12) - 1e-12,
                    "seed {seed}: backoff shrank {prev} -> {b} at attempt {attempt}"
                );
                assert_eq!(
                    b.to_bits(),
                    policy.backoff_at(attempt).to_bits(),
                    "seed {seed}: backoff_at must be deterministic"
                );
                prev = b;
            }
        }
    }
}

#[test]
fn serving_under_faults_accounts_for_every_job() {
    // Mirror of the proptest property: whatever faults are injected —
    // transient kernel/transfer faults at arbitrary rates, optionally a
    // permanent device loss — the scheduler must account for every
    // submission exactly once with a typed terminal state, and a
    // transient-only plan must lose no job at all.
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let jobs = 2 + rng.below(6) as usize;
        let kernel = rng.below(500) as f64 / 1000.0;
        let transfer = rng.below(300) as f64 / 1000.0;
        let loss = (rng.below(2) == 1).then(|| 5 + rng.below(55));
        let mut plan = FaultPlan::new(seed)
            .with_kernel_rate(kernel)
            .with_transfer_rate(transfer);
        if let Some(at) = loss {
            plan = plan.with_device_loss_at(at);
        }
        let transient_only = plan.is_transient_only();
        let serve = ServeConfig {
            queue_capacity: jobs,
            faults: Some(FaultConfig::new(plan)),
            ..ServeConfig::default()
        };
        let fleet: Vec<JobRequest> = (0..jobs)
            .map(|i| {
                let n = 256usize << (i % 2);
                let spec = match i % 3 {
                    0 => ScheduleSpec::Basic { crossover: Some(4) },
                    1 => ScheduleSpec::GpuOnly,
                    _ => ScheduleSpec::CpuParallel,
                };
                let data: Vec<u32> = (0..n as u32).rev().collect();
                JobRequest::new(
                    format!("sort-{i}"),
                    spec,
                    i as f64 * 500.0,
                    AlgoJob::boxed(MergeSort::new(), data),
                )
            })
            .collect();
        let out = serve_sim(&small_machine(), &serve, fleet);
        let mut ids: Vec<u64> = out.report.jobs.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs, "seed {seed}: one record per submission");
        for r in &out.report.jobs {
            assert!(
                matches!(
                    r.outcome,
                    JobOutcome::Completed | JobOutcome::Failed { .. } | JobOutcome::Cancelled
                ),
                "seed {seed}: job {} ended untyped: {:?}",
                r.id,
                r.outcome
            );
        }
        let r = &out.report;
        assert_eq!(
            r.completed + r.failed + r.cancelled + r.rejected,
            jobs,
            "seed {seed}: outcomes must partition the fleet"
        );
        if transient_only {
            assert_eq!(
                r.completed, jobs,
                "seed {seed}: transient-only faults must lose no job"
            );
        }
    }
}

#[test]
fn one_node_fleet_is_observationally_identical_to_serve_sim() {
    use hpu_fleet::{fleet_sim, FleetConfig, FleetJobRequest, NodeSpec, RouterPolicy};
    use hpu_machine::SimMachineParams;
    use hpu_model::CalibratorConfig;

    // Mirror of the proptest property: a 1-node fleet under the trivial
    // round-robin router IS plain `serve_sim` — same outcomes, same
    // latencies, same device leases, same calibration generations, seed
    // for seed. The node's beliefs are mis-specified (2x gamma) with the
    // calibration loop on, so the equivalence also covers drift-triggered
    // replans and generation bumps.
    for seed in SEEDS {
        let mut rng = Rng(seed);
        let jobs = 2 + rng.below(8) as usize;
        let shapes: Vec<(ScheduleSpec, usize, f64)> = (0..jobs)
            .map(|i| {
                let spec = match i % 3 {
                    0 => ScheduleSpec::Basic { crossover: Some(4) },
                    1 => ScheduleSpec::GpuOnly,
                    _ => ScheduleSpec::CpuParallel,
                };
                (spec, 256usize << (i % 2), rng.below(4000) as f64)
            })
            .collect();
        let machine = small_machine();
        let truth = MachineParams::from_config(&machine);
        let assumed = MachineParams::new(truth.p, truth.g, (truth.gamma * 2.0).min(1.0))
            .unwrap()
            .with_transfer_cost(truth.lambda, truth.delta);
        let serve = ServeConfig {
            queue_capacity: jobs,
            assumed: Some(assumed),
            calibration: Some(CalibratorConfig::default()),
            ..ServeConfig::default()
        };
        let data = |n: usize| -> Vec<u32> { (0..n as u32).rev().collect() };

        let solo: Vec<JobRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, (spec, n, at))| {
                JobRequest::new(
                    format!("j{i}"),
                    spec.clone(),
                    *at,
                    AlgoJob::boxed(MergeSort::new(), data(*n)),
                )
            })
            .collect();
        let a = serve_sim(&machine, &serve, solo);

        let mut cfg = FleetConfig::new(vec![
            NodeSpec::new("solo", machine.clone()).with_serve(serve.clone())
        ]);
        cfg.router = RouterPolicy::RoundRobin;
        let fleet_jobs: Vec<FleetJobRequest> = shapes
            .iter()
            .enumerate()
            .map(|(i, (spec, n, at))| {
                FleetJobRequest::new(
                    format!("j{i}"),
                    spec.clone(),
                    *at,
                    AlgoJob::boxed(MergeSort::new(), data(*n)),
                )
            })
            .collect();
        let b = fleet_sim(&cfg, fleet_jobs);

        assert!(b.steals.is_empty(), "seed {seed}: 1 node cannot steal");
        let node = &b.nodes[0];
        assert_eq!(a.report, node.report, "seed {seed}");
        assert_eq!(a.replans, node.replans, "seed {seed}");
        assert_eq!(a.calibration, node.calibration, "seed {seed}");
        assert_eq!(a.gpu_leases, node.gpu_leases, "seed {seed}");
        assert_eq!(a.cpu_reservations, node.cpu_reservations, "seed {seed}");
        assert_eq!(b.report.completed, a.report.completed, "seed {seed}");
    }
}

#[test]
fn virtual_time_scales_with_work() {
    for n_log in 6u32..11 {
        // Doubling the input must not shrink virtual time, whatever the
        // strategy.
        let run_at = |n: usize| {
            let mut data: Vec<u32> = (0..n as u32).rev().collect();
            let mut hpu = SimHpu::new(small_machine());
            run_sim(&MergeSort::new(), &mut data, &mut hpu, &Sched::CpuOnly)
                .unwrap()
                .virtual_time
        };
        let t1 = run_at(1 << n_log);
        let t2 = run_at(1 << (n_log + 1));
        assert!(t2 > t1, "n_log {n_log}: {t1} -> {t2}");
    }
}
